package directory

import (
	"net/http"
	"sort"

	"repro/internal/ledger"
	"repro/internal/token"
	"repro/internal/trace"
)

// This file is the directory's telemetry sink: the §3 directory already
// aggregates authorization and accounting state for the cluster, and
// observability rides the same channel. Peers periodically POST a
// TelemetryReport — span aggregates, hop metrics, tunnel counters,
// flight-recorder anomalies — and anyone (the launcher, a human with
// curl) GETs the merged cluster-wide view:
//
//	POST /v1/telemetry  TelemetryReport -> 204 (latest-wins per peer by Seq)
//	GET  /debug/cluster                 -> ClusterReport
//
// Reports are cumulative snapshots, not deltas, so the merge is
// stateless: keep the highest-Seq report per peer, fold the per-stage
// histograms together with trace.MergeStages. A late or duplicate POST
// (retried HTTP request, slow peer) can never double-count.

// TunnelTelemetry is one udpnet tunnel's counters as its owning peer
// reported them.
type TunnelTelemetry struct {
	LinkID       uint16 `json:"link_id"`
	Peer         string `json:"peer,omitempty"` // remote peer name, when known
	Encapsulated uint64 `json:"encapsulated"`
	Decapsulated uint64 `json:"decapsulated"`
	DecodeErrors uint64 `json:"decode_errors,omitempty"`
	SendErrors   uint64 `json:"send_errors,omitempty"`
	Dropped      uint64 `json:"dropped,omitempty"`
	TracedSent   uint64 `json:"traced_sent"`
	TracedRecv   uint64 `json:"traced_recv"`
}

// GatewayTelemetry summarizes one gateway relay (ingress or egress) for
// the cluster report: stream and byte counters, group round-trip
// percentiles, and the VMTP-level retransmission behaviour underneath.
type GatewayTelemetry struct {
	Role            string           `json:"role"` // "ingress" | "egress"
	Streams         uint64           `json:"streams"`
	ActiveStreams   int              `json:"active_streams"`
	CleanCloses     uint64           `json:"clean_closes"`
	Resets          uint64           `json:"resets"`
	BytesIn         uint64           `json:"bytes_in"`
	BytesOut        uint64           `json:"bytes_out"`
	GroupsSent      uint64           `json:"groups_sent"`
	GroupRTTp50us   int64            `json:"group_rtt_p50_us"`
	GroupRTTp99us   int64            `json:"group_rtt_p99_us"`
	Retransmissions uint64           `json:"retransmissions"`
	DupRequests     uint64           `json:"dup_requests"`
	PeerRTTNs       map[string]int64 `json:"peer_rtt_ns,omitempty"` // smoothed VMTP RTT by peer entity (hex)
}

// TelemetryReport is one peer's cumulative telemetry snapshot. Seq
// increases with every shipment from the same peer; the directory keeps
// the highest.
type TelemetryReport struct {
	Peer string `json:"peer"`
	Seq  uint64 `json:"seq"`
	AtNs int64  `json:"at_ns"` // sender's wall clock at snapshot time

	// Span-leak accounting: at quiesce TraceFinished must equal
	// TraceBegun + TraceResumed, or this peer leaked trace records.
	TraceBegun    uint64 `json:"trace_begun"`
	TraceResumed  uint64 `json:"trace_resumed"`
	TraceFinished uint64 `json:"trace_finished"`

	Spans   trace.SpansSnapshot `json:"spans"`
	Metrics trace.Snapshot      `json:"metrics"`

	Tunnels  []TunnelTelemetry  `json:"tunnels,omitempty"`
	Gateways []GatewayTelemetry `json:"gateways,omitempty"`

	// FlightTotal counts every anomaly the peer's flight recorder ever
	// saw; Flight holds the retained tail.
	FlightTotal uint64         `json:"flight_total"`
	Flight      []ledger.Event `json:"flight,omitempty"`
}

// ClusterReport is the merged cluster-wide observability view served at
// /debug/cluster.
type ClusterReport struct {
	Expect int               `json:"expect"` // cluster size
	Nodes  []TelemetryReport `json:"nodes"`  // latest report per peer, sorted by name
	// Stages is the cluster-wide per-stage latency view: every node's
	// span histograms absorbed stage-by-stage, so counts are exact.
	Stages []trace.StageStats     `json:"stages,omitempty"`
	Bill   map[uint32]token.Usage `json:"bill,omitempty"`
}

// Complete reports whether every expected peer has shipped telemetry.
func (cr ClusterReport) Complete() bool { return len(cr.Nodes) >= cr.Expect }

func (ns *NetService) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	var rep TelemetryReport
	if !readJSON(w, r, &rep) {
		return
	}
	if rep.Peer == "" {
		http.Error(w, "telemetry needs a peer name", http.StatusBadRequest)
		return
	}
	ns.mu.Lock()
	if prev, ok := ns.telemetry[rep.Peer]; !ok || rep.Seq >= prev.Seq {
		ns.telemetry[rep.Peer] = rep
	}
	ns.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (ns *NetService) handleCluster(w http.ResponseWriter, r *http.Request) {
	ns.mu.Lock()
	rep := ns.clusterLocked()
	ns.mu.Unlock()
	writeJSON(w, http.StatusOK, rep)
}

// clusterLocked merges the latest per-peer telemetry into one report.
func (ns *NetService) clusterLocked() ClusterReport {
	out := ClusterReport{Expect: ns.expect, Bill: ns.svc.Bill()}
	names := make([]string, 0, len(ns.telemetry))
	for k := range ns.telemetry {
		names = append(names, k)
	}
	sort.Strings(names)
	groups := make([][]trace.StageStats, 0, len(names))
	for _, k := range names {
		rep := ns.telemetry[k]
		out.Nodes = append(out.Nodes, rep)
		groups = append(groups, rep.Spans.Stages)
	}
	out.Stages = trace.MergeStages(groups...)
	return out
}

// Telemetry ships one cumulative telemetry snapshot to the directory.
func (c *Client) Telemetry(rep TelemetryReport) error {
	return c.post("/v1/telemetry", rep, nil)
}

// Cluster fetches the merged cluster-wide telemetry report.
func (c *Client) Cluster() (ClusterReport, error) {
	var rep ClusterReport
	_, err := c.get("/debug/cluster", &rep)
	return rep, err
}
