package directory

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/token"
)

// Service is the routing directory: hierarchical character-string names
// (which "serve as the unique hierarchical identifiers for hosts,
// gateways and networks", §3) bound to topology nodes, route computation
// with tokens, and load/failure advisories.
//
// The name space is organized as a region hierarchy following Singh's
// scheme (§3): each dot-separated suffix is a region with its own server;
// resolving a name costs one server round trip per region boundary
// crossed, unless answered from the client's cache.
type Service struct {
	eng *sim.Engine
	g   *Graph

	names map[string]string // hierarchical name -> node name

	auths map[string]*token.Authority // router -> token authority
	usage map[string]map[uint32]token.Usage

	// PerLevelLatency is the simulated cost of one region-server hop
	// during resolution. Default 2ms.
	PerLevelLatency sim.Time

	// Stats.
	Lookups      uint64
	RouteQueries uint64
}

// NewService creates a directory over a topology graph.
func NewService(eng *sim.Engine, g *Graph) *Service {
	return &Service{
		eng:             eng,
		g:               g,
		names:           make(map[string]string),
		auths:           make(map[string]*token.Authority),
		PerLevelLatency: 2 * sim.Millisecond,
	}
}

// Graph exposes the topology for reports and tests.
func (s *Service) Graph() *Graph { return s.g }

// Register binds a hierarchical name to a topology node.
func (s *Service) Register(name, node string) error {
	if _, ok := s.g.nodes[node]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, node)
	}
	s.names[name] = node
	return nil
}

// RegisterAuthority installs the token authority for a router's
// administrative domain; routes through that router will carry tokens
// issued against it.
func (s *Service) RegisterAuthority(router string, a *token.Authority) {
	s.auths[router] = a
}

// Resolve maps a hierarchical name to its node.
func (s *Service) Resolve(name string) (string, bool) {
	s.Lookups++
	n, ok := s.names[name]
	if !ok {
		// Accept bare node names too.
		if _, isNode := s.g.nodes[name]; isNode {
			return name, true
		}
	}
	return n, ok
}

// ResolutionLatency models the cost of resolving a name from a client in
// a given region: one server round trip per region boundary between the
// client's region and the name's region, per Singh's hierarchy. A name
// entirely within the client's region costs one hop.
func (s *Service) ResolutionLatency(clientRegion, name string) sim.Time {
	hops := 1 + regionDistance(clientRegion, regionOf(name))
	return sim.Time(hops) * s.PerLevelLatency
}

// regionOf strips the leaf label: "argus.cs.stanford.edu" -> "cs.stanford.edu".
func regionOf(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return ""
}

// regionDistance counts the region-tree hops between two regions: up
// from a to the common ancestor suffix, then down to b.
func regionDistance(a, b string) int {
	al := labels(a)
	bl := labels(b)
	// Longest common suffix.
	i, j := len(al)-1, len(bl)-1
	common := 0
	for i >= 0 && j >= 0 && al[i] == bl[j] {
		common++
		i--
		j--
	}
	return (len(al) - common) + (len(bl) - common)
}

func labels(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ".")
}

// Routes answers a route query by name or node, issuing tokens for
// token-guarded routers along each route.
func (s *Service) Routes(q Query) ([]Route, error) {
	s.RouteQueries++
	from, ok := s.Resolve(q.From)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, q.From)
	}
	to, ok := s.Resolve(q.To)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, q.To)
	}
	nq := q
	nq.From, nq.To = from, to
	return s.g.routesBetween(nq, func(r string) (*token.Authority, bool) {
		a, ok := s.auths[r]
		return a, ok
	})
}

// Advise re-evaluates a previously returned route against current
// topology state: it reports whether the route is still usable (no edge
// down) — the "route advisories" clients periodically request (§6.3).
func (s *Service) Advise(r *Route) bool {
	for i := 0; i+1 < len(r.Path); i++ {
		e, ok := s.g.FindEdge(r.Path[i], r.Path[i+1])
		if !ok || e.Down {
			return false
		}
	}
	return true
}

// ReportDown records a failure report for the adjacency between two
// nodes (from routers, hosts or network monitors, §3).
func (s *Service) ReportDown(a, b string) { s.g.SetDown(a, b, true) }

// ReportUp clears a failure report.
func (s *Service) ReportUp(a, b string) { s.g.SetDown(a, b, false) }

// ReportLoad records measured load on the from->to edge; subsequent
// MinDelay route computations steer around hot links.
func (s *Service) ReportLoad(from, to string, loadBps float64) {
	s.g.ReportLoad(from, to, loadBps)
}

// ReportUsage records a router's per-account usage snapshot. §3 argues
// the directory should absorb this role: "Merging the routing and
// directory services facilitates supporting authorization and accounting
// as part of routing ... The authorization and accounting information
// represents a data base."
func (s *Service) ReportUsage(router string, totals map[uint32]token.Usage) {
	if s.usage == nil {
		s.usage = make(map[string]map[uint32]token.Usage)
	}
	cp := make(map[uint32]token.Usage, len(totals))
	for a, u := range totals {
		cp[a] = u
	}
	s.usage[router] = cp
}

// Bill aggregates the latest usage reports across all routers into
// per-account totals.
func (s *Service) Bill() map[uint32]token.Usage {
	out := make(map[uint32]token.Usage)
	for _, per := range s.usage {
		for a, u := range per {
			t := out[a]
			t.Add(u)
			out[a] = t
		}
	}
	return out
}

// Resolver is a client-side cache of routes with TTL and on-use refresh,
// "the use of caching, on-use detection of stale data and hierarchical
// structure ... reduces the expected response time for routing queries"
// (§3).
type Resolver struct {
	svc *Service
	eng *sim.Engine
	ttl sim.Time

	cache map[string]cachedRoutes

	Hits, Misses uint64
}

type cachedRoutes struct {
	routes  []Route
	expires sim.Time
}

// NewResolver creates a client cache with the given TTL.
func NewResolver(eng *sim.Engine, svc *Service, ttl sim.Time) *Resolver {
	return &Resolver{svc: svc, eng: eng, ttl: ttl, cache: make(map[string]cachedRoutes)}
}

// Routes returns cached routes when fresh, otherwise queries the
// directory. The latency of a cold query is returned so callers can
// charge it; cache hits are free.
func (r *Resolver) Routes(q Query) ([]Route, sim.Time, error) {
	key := fmt.Sprintf("%s>%s/%d/%d/%d", q.From, q.To, q.Pref, q.Count, q.Endpoint)
	if c, ok := r.cache[key]; ok && r.eng.Now() < c.expires {
		r.Hits++
		return c.routes, 0, nil
	}
	r.Misses++
	routes, err := r.svc.Routes(q)
	if err != nil {
		return nil, 0, err
	}
	r.cache[key] = cachedRoutes{routes: routes, expires: r.eng.Now() + r.ttl}
	lat := r.svc.ResolutionLatency(regionOf(q.From), q.To)
	return routes, lat, nil
}

// Invalidate drops a cached entry (on-use detection of staleness: a
// route that stopped working is flushed and re-queried).
func (r *Resolver) Invalidate(q Query) {
	key := fmt.Sprintf("%s>%s/%d/%d/%d", q.From, q.To, q.Pref, q.Count, q.Endpoint)
	delete(r.cache, key)
}
