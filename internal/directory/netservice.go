package directory

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"repro/internal/token"
)

// This file is the network face of the directory: the same Service that
// answers in-process route queries, exposed as an HTTP protocol so
// daemons in other OS processes can register, discover each other's
// socket addresses, and obtain routes *with tokens* across the process
// boundary — the §3 directory as an actual network service rather than
// a library call. The protocol is deliberately small and JSON-typed:
//
//	POST /v1/register  PeerReg            -> RegisterReply (all peers so far)
//	GET  /v1/peers                        -> []PeerReg (sorted by name)
//	POST /v1/routes    Query              -> []Route (segments carry tokens)
//	POST /v1/barrier   BarrierReq         -> 200 once every expected peer arrives
//	POST /v1/usage     UsageReport        -> 204 (feeds Service.ReportUsage)
//	GET  /v1/bill                         -> map[account]token.Usage (merged)
//	POST /v1/report    PeerReport         -> 204 (opaque per-peer result blob)
//	GET  /v1/reports                      -> map[peer]RawMessage, 202 until all in
//	POST /v1/telemetry TelemetryReport    -> 204 (latest-wins per peer; telemetry.go)
//	GET  /debug/cluster                   -> ClusterReport (merged observability view)
//
// Route segments serialize with their port tokens intact (JSON base64),
// so a token minted here verifies unchanged on the guarded router in
// whichever process terminates that hop — token issue is deterministic
// HMAC, which is what makes cross-process ledger parity checkable.

// PeerReg is one daemon's registration: its name, the UDP address of
// its udpnet bridge, the topology nodes it hosts, and — when the peer
// runs a SOCKS ingress gateway — the TCP address clients proxy
// through.
type PeerReg struct {
	Name    string   `json:"name"`
	UDPAddr string   `json:"udp_addr"`
	Nodes   []string `json:"nodes,omitempty"`
	Socks   string   `json:"socks,omitempty"`
}

// RegisterReply acknowledges a registration with the full peer set
// known so far; peers poll GET /v1/peers until the expected count is
// present.
type RegisterReply struct {
	Peers []PeerReg `json:"peers"`
}

// BarrierReq names the stage a peer has reached. The barrier releases
// every waiter once all expected peers have posted the same stage.
type BarrierReq struct {
	Peer  string `json:"peer"`
	Stage string `json:"stage"`
}

// UsageReport is a router's per-account usage sweep, posted so the
// directory can aggregate billing across processes (§3: "the
// authorization and accounting information represents a data base").
type UsageReport struct {
	Router string                 `json:"router"`
	Totals map[uint32]token.Usage `json:"totals"`
}

// PeerReport carries one peer's opaque end-of-run result blob.
type PeerReport struct {
	Peer string          `json:"peer"`
	Body json.RawMessage `json:"body"`
}

// NetService serves a directory Service over HTTP to a fixed-size
// cluster of expected peers. The underlying Service is not
// concurrency-safe, so all access is serialized here.
type NetService struct {
	mu  sync.Mutex
	svc *Service

	expect    int
	peers     map[string]PeerReg
	reports   map[string]json.RawMessage
	barriers  map[string]*barrier
	telemetry map[string]TelemetryReport // latest report per peer (highest Seq wins)
	shutdown  bool
}

type barrier struct {
	arrived map[string]bool
	done    chan struct{}
}

// NewNetService wraps svc for network consumption by expect peers.
func NewNetService(svc *Service, expect int) *NetService {
	return &NetService{
		svc:       svc,
		expect:    expect,
		peers:     make(map[string]PeerReg),
		reports:   make(map[string]json.RawMessage),
		barriers:  make(map[string]*barrier),
		telemetry: make(map[string]TelemetryReport),
	}
}

// Expect returns the cluster size the service coordinates.
func (ns *NetService) Expect() int { return ns.expect }

// Handler returns the service's HTTP mux, mountable on any server.
func (ns *NetService) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register", ns.handleRegister)
	mux.HandleFunc("GET /v1/peers", ns.handlePeers)
	mux.HandleFunc("POST /v1/routes", ns.handleRoutes)
	mux.HandleFunc("POST /v1/barrier", ns.handleBarrier)
	mux.HandleFunc("POST /v1/usage", ns.handleUsage)
	mux.HandleFunc("GET /v1/bill", ns.handleBill)
	mux.HandleFunc("POST /v1/report", ns.handleReport)
	mux.HandleFunc("GET /v1/reports", ns.handleReports)
	mux.HandleFunc("POST /v1/shutdown", ns.handleShutdownSet)
	mux.HandleFunc("GET /v1/shutdown", ns.handleShutdownGet)
	mux.HandleFunc("POST /v1/telemetry", ns.handleTelemetry)
	mux.HandleFunc("GET /debug/cluster", ns.handleCluster)
	return mux
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (ns *NetService) handleRegister(w http.ResponseWriter, r *http.Request) {
	var reg PeerReg
	if !readJSON(w, r, &reg) {
		return
	}
	if reg.Name == "" {
		http.Error(w, "registration needs a name", http.StatusBadRequest)
		return
	}
	ns.mu.Lock()
	ns.peers[reg.Name] = reg
	reply := RegisterReply{Peers: ns.sortedPeersLocked()}
	ns.mu.Unlock()
	writeJSON(w, http.StatusOK, reply)
}

func (ns *NetService) handlePeers(w http.ResponseWriter, r *http.Request) {
	ns.mu.Lock()
	peers := ns.sortedPeersLocked()
	ns.mu.Unlock()
	writeJSON(w, http.StatusOK, peers)
}

// sortedPeersLocked snapshots registrations in name order, so every
// peer sees the identical sequence regardless of arrival order.
func (ns *NetService) sortedPeersLocked() []PeerReg {
	out := make([]PeerReg, 0, len(ns.peers))
	for _, p := range ns.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (ns *NetService) handleRoutes(w http.ResponseWriter, r *http.Request) {
	var q Query
	if !readJSON(w, r, &q) {
		return
	}
	ns.mu.Lock()
	routes, err := ns.svc.Routes(q)
	ns.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, routes)
}

// handleBarrier blocks the request until every expected peer has
// posted the same stage — the request goroutine is the waiter, so no
// client-side polling loop is needed.
func (ns *NetService) handleBarrier(w http.ResponseWriter, r *http.Request) {
	var req BarrierReq
	if !readJSON(w, r, &req) {
		return
	}
	ns.mu.Lock()
	b := ns.barriers[req.Stage]
	if b == nil {
		b = &barrier{arrived: make(map[string]bool), done: make(chan struct{})}
		ns.barriers[req.Stage] = b
	}
	b.arrived[req.Peer] = true
	if len(b.arrived) >= ns.expect {
		select {
		case <-b.done:
		default:
			close(b.done)
		}
	}
	done := b.done
	ns.mu.Unlock()

	select {
	case <-done:
		w.WriteHeader(http.StatusOK)
	case <-r.Context().Done():
		http.Error(w, "barrier wait aborted", http.StatusRequestTimeout)
	}
}

func (ns *NetService) handleUsage(w http.ResponseWriter, r *http.Request) {
	var u UsageReport
	if !readJSON(w, r, &u) {
		return
	}
	ns.mu.Lock()
	ns.svc.ReportUsage(u.Router, u.Totals)
	ns.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (ns *NetService) handleBill(w http.ResponseWriter, r *http.Request) {
	ns.mu.Lock()
	bill := ns.svc.Bill()
	ns.mu.Unlock()
	writeJSON(w, http.StatusOK, bill)
}

func (ns *NetService) handleReport(w http.ResponseWriter, r *http.Request) {
	var rep PeerReport
	if !readJSON(w, r, &rep) {
		return
	}
	ns.mu.Lock()
	ns.reports[rep.Peer] = rep.Body
	ns.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// Shutdown is a one-way latch the launcher raises when its externally
// driven workload (the gateway transfer) is done; long-running peers
// poll it to know when to stop serving and proceed to the drain
// barrier. It is coordination state, not topology, so it lives here
// with the barriers rather than in the route model.
func (ns *NetService) handleShutdownSet(w http.ResponseWriter, r *http.Request) {
	ns.mu.Lock()
	ns.shutdown = true
	ns.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (ns *NetService) handleShutdownGet(w http.ResponseWriter, r *http.Request) {
	ns.mu.Lock()
	sd := ns.shutdown
	ns.mu.Unlock()
	writeJSON(w, http.StatusOK, sd)
}

func (ns *NetService) handleReports(w http.ResponseWriter, r *http.Request) {
	ns.mu.Lock()
	n := len(ns.reports)
	cp := make(map[string]json.RawMessage, n)
	for k, v := range ns.reports {
		cp[k] = v
	}
	ns.mu.Unlock()
	status := http.StatusOK
	if n < ns.expect {
		status = http.StatusAccepted
	}
	writeJSON(w, status, cp)
}
