package directory

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/token"
)

// Client is the daemon-side consumer of a NetService: the same
// operations the in-process Service offers, over the wire. A zero
// HTTP client with no special transport is fine for the localhost
// clusters this drives, but any http.Client can be injected.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets a NetService at base (e.g. "http://127.0.0.1:7474").
func NewClient(base string) *Client {
	return &Client{base: base, http: &http.Client{}}
}

func (c *Client) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("directory client: marshal %s: %w", path, err)
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("directory client: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("directory client: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *Client) get(path string, out any) (int, error) {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return 0, fmt.Errorf("directory client: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return resp.StatusCode, fmt.Errorf("directory client: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
}

// Register announces this peer and returns the peer set known so far.
func (c *Client) Register(reg PeerReg) ([]PeerReg, error) {
	var reply RegisterReply
	if err := c.post("/v1/register", reg, &reply); err != nil {
		return nil, err
	}
	return reply.Peers, nil
}

// Peers returns the current registrations, sorted by name.
func (c *Client) Peers() ([]PeerReg, error) {
	var peers []PeerReg
	_, err := c.get("/v1/peers", &peers)
	return peers, err
}

// WaitPeers polls until n peers have registered or the deadline
// passes, returning the full set.
func (c *Client) WaitPeers(n int, deadline time.Duration) ([]PeerReg, error) {
	end := time.Now().Add(deadline)
	for {
		peers, err := c.Peers()
		if err == nil && len(peers) >= n {
			return peers, nil
		}
		if time.Now().After(end) {
			if err == nil {
				err = fmt.Errorf("directory client: %d/%d peers registered", len(peers), n)
			}
			return nil, err
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Routes queries the directory; returned segments carry port tokens.
func (c *Client) Routes(q Query) ([]Route, error) {
	var routes []Route
	if err := c.post("/v1/routes", q, &routes); err != nil {
		return nil, err
	}
	return routes, nil
}

// Barrier blocks until every expected peer has reached stage.
func (c *Client) Barrier(peer, stage string) error {
	return c.post("/v1/barrier", BarrierReq{Peer: peer, Stage: stage}, nil)
}

// ReportUsage posts a router's per-account sweep for directory billing.
func (c *Client) ReportUsage(router string, totals map[uint32]token.Usage) error {
	return c.post("/v1/usage", UsageReport{Router: router, Totals: totals}, nil)
}

// Bill fetches the directory's merged per-account billing view.
func (c *Client) Bill() (map[uint32]token.Usage, error) {
	var bill map[uint32]token.Usage
	_, err := c.get("/v1/bill", &bill)
	return bill, err
}

// Shutdown raises the cluster-wide shutdown latch.
func (c *Client) Shutdown() error {
	return c.post("/v1/shutdown", struct{}{}, nil)
}

// ShutdownRequested reports whether the shutdown latch has been raised.
func (c *Client) ShutdownRequested() (bool, error) {
	var sd bool
	_, err := c.get("/v1/shutdown", &sd)
	return sd, err
}

// Report posts this peer's end-of-run result blob.
func (c *Client) Report(peer string, body any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("directory client: marshal report: %w", err)
	}
	return c.post("/v1/report", PeerReport{Peer: peer, Body: raw}, nil)
}

// Reports fetches all peers' reports, polling until every expected
// peer has reported or the deadline passes.
func (c *Client) Reports(deadline time.Duration) (map[string]json.RawMessage, error) {
	end := time.Now().Add(deadline)
	for {
		var out map[string]json.RawMessage
		status, err := c.get("/v1/reports", &out)
		if err == nil && status == http.StatusOK {
			return out, nil
		}
		if time.Now().After(end) {
			if err == nil {
				err = fmt.Errorf("directory client: reports incomplete at deadline")
			}
			return nil, err
		}
		time.Sleep(10 * time.Millisecond)
	}
}
