// Package directory implements the internetwork directory service of §3:
// a hierarchical name service extended to return *routes* as attributes
// of a service — source routes with their MTU, base round-trip time,
// bandwidth, cost and security properties, plus the port tokens that
// authorize them (§2.2). Clients can request multiple routes and routes
// with particular properties ("low delay, high bandwidth, low cost and
// security", §3).
//
// The directory maintains a topology graph fed by attachment records and
// by load/failure reports from routers and monitoring stations (§6.3).
package directory

import (
	"fmt"
	"sort"

	"repro/internal/ethernet"
	"repro/internal/sim"
)

// NodeKind distinguishes endpoints from switches.
type NodeKind int

const (
	KindHost NodeKind = iota
	KindRouter
)

// EdgeAttrs are the static properties of an attachment the directory
// returns with routes (§3: "the directory service can return information
// on the bandwidth, propagation delay, maximum transmission unit, etc.").
type EdgeAttrs struct {
	RateBps float64
	Prop    sim.Time
	MTU     int // 0 = unlimited
	// Secure marks links acceptable for security-sensitive routes (§2:
	// route selection for security reduces exposure to insecure
	// portions of the network).
	Secure bool
	// CostPerKB is the administrative cost metric for MinCost routing.
	CostPerKB float64
}

// Edge is a directed attachment: traffic leaves From via FromPort and
// reaches To. On multi-access networks the station addresses build the
// hop's network header.
type Edge struct {
	From, To    string
	FromPort    uint8
	FromStation ethernet.Addr // zero on point-to-point links
	ToStation   ethernet.Addr // zero on point-to-point links
	Attrs       EdgeAttrs

	// Dynamic state from reports.
	Down    bool
	LoadBps float64
}

// multiAccess reports whether the edge crosses a multi-access network.
func (e *Edge) multiAccess() bool { return e.ToStation != (ethernet.Addr{}) }

// Graph is the directory's topology model.
type Graph struct {
	nodes map[string]NodeKind
	out   map[string][]*Edge
}

// NewGraph creates an empty topology.
func NewGraph() *Graph {
	return &Graph{nodes: make(map[string]NodeKind), out: make(map[string][]*Edge)}
}

// AddNode registers a node.
func (g *Graph) AddNode(name string, kind NodeKind) {
	g.nodes[name] = kind
}

// NodeKind returns a node's kind.
func (g *Graph) NodeKind(name string) (NodeKind, bool) {
	k, ok := g.nodes[name]
	return k, ok
}

// AddEdge registers a directed attachment. Both endpoints must exist.
func (g *Graph) AddEdge(e Edge) error {
	if _, ok := g.nodes[e.From]; !ok {
		return fmt.Errorf("directory: unknown node %q", e.From)
	}
	if _, ok := g.nodes[e.To]; !ok {
		return fmt.Errorf("directory: unknown node %q", e.To)
	}
	ec := e
	g.out[e.From] = append(g.out[e.From], &ec)
	return nil
}

// Edges returns the out-edges of a node.
func (g *Graph) Edges(from string) []*Edge { return g.out[from] }

// FindEdge returns the edge from->to, if any.
func (g *Graph) FindEdge(from, to string) (*Edge, bool) {
	for _, e := range g.out[from] {
		if e.To == to {
			return e, true
		}
	}
	return nil, false
}

// SetDown marks both directions of the from<->to adjacency up or down
// (failure reports from monitors and routers, §6.3).
func (g *Graph) SetDown(a, b string, down bool) {
	if e, ok := g.FindEdge(a, b); ok {
		e.Down = down
	}
	if e, ok := g.FindEdge(b, a); ok {
		e.Down = down
	}
}

// ReportLoad records the measured load on the from->to edge.
func (g *Graph) ReportLoad(from, to string, loadBps float64) {
	if e, ok := g.FindEdge(from, to); ok {
		e.LoadBps = loadBps
	}
}

// Nodes returns all node names, sorted for determinism.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
