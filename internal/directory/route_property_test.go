package directory

import (
	"math/rand"
	"testing"

	"repro/internal/ethernet"
	"repro/internal/sim"
)

// randomGraph builds a random connected host+router graph.
func randomGraph(r *rand.Rand) (*Graph, []string) {
	g := NewGraph()
	nRouters := 2 + r.Intn(6)
	for i := 0; i < nRouters; i++ {
		g.AddNode(rname(i), KindRouter)
	}
	addr := uint64(1)
	st := func() ethernet.Addr { addr++; return ethernet.AddrFromUint64(addr) }
	attrs := func() EdgeAttrs {
		return EdgeAttrs{
			RateBps:   []float64{1.5e6, 10e6, 45e6}[r.Intn(3)],
			Prop:      sim.Time(r.Intn(2000)) * sim.Microsecond,
			Secure:    r.Intn(2) == 0,
			CostPerKB: float64(r.Intn(10)),
		}
	}
	bi := func(a, b string, pa, pb uint8) {
		att := attrs()
		if r.Intn(2) == 0 {
			sa, sb := st(), st()
			g.AddEdge(Edge{From: a, To: b, FromPort: pa, FromStation: sa, ToStation: sb, Attrs: att})
			g.AddEdge(Edge{From: b, To: a, FromPort: pb, FromStation: sb, ToStation: sa, Attrs: att})
		} else {
			g.AddEdge(Edge{From: a, To: b, FromPort: pa, Attrs: att})
			g.AddEdge(Edge{From: b, To: a, FromPort: pb, Attrs: att})
		}
	}
	// Ring of routers plus chords.
	for i := 0; i < nRouters; i++ {
		bi(rname(i), rname((i+1)%nRouters), uint8(10+i), uint8(20+i))
	}
	for c := 0; c < nRouters/2; c++ {
		a, b := r.Intn(nRouters), r.Intn(nRouters)
		if a != b {
			bi(rname(a), rname(b), uint8(30+c), uint8(40+c))
		}
	}
	// Hosts on random routers.
	nHosts := 2 + r.Intn(4)
	var hosts []string
	for i := 0; i < nHosts; i++ {
		h := hname(i)
		g.AddNode(h, KindHost)
		bi(h, rname(r.Intn(nRouters)), 1, uint8(50+i))
		hosts = append(hosts, h)
	}
	return g, hosts
}

func rname(i int) string { return string(rune('A'+i)) + "r" }
func hname(i int) string { return string(rune('a'+i)) + "h" }

// TestPropertyRoutesWellFormed checks invariants over random graphs and
// preferences: paths connect the endpoints, never repeat a node, never
// transit a host, have one segment per edge plus the host segment, and
// secure-only routes use only secure edges.
func TestPropertyRoutesWellFormed(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	for trial := 0; trial < 150; trial++ {
		g, hosts := randomGraph(r)
		from := hosts[r.Intn(len(hosts))]
		to := hosts[r.Intn(len(hosts))]
		if from == to {
			continue
		}
		pref := Pref(r.Intn(5))
		count := 1 + r.Intn(3)
		routes, err := g.routesBetween(Query{From: from, To: to, Pref: pref, Count: count}, nil)
		if err == ErrNoRoute {
			continue // secure-only may legitimately find nothing
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for ri, rt := range routes {
			if rt.Path[0] != from || rt.Path[len(rt.Path)-1] != to {
				t.Fatalf("trial %d route %d: path %v does not connect %s->%s", trial, ri, rt.Path, from, to)
			}
			seen := map[string]bool{}
			for i, nd := range rt.Path {
				if seen[nd] {
					t.Fatalf("trial %d route %d: node %s repeated in %v", trial, ri, nd, rt.Path)
				}
				seen[nd] = true
				if i != 0 && i != len(rt.Path)-1 {
					if k, _ := g.NodeKind(nd); k == KindHost {
						t.Fatalf("trial %d route %d: host %s used as transit", trial, ri, nd)
					}
				}
			}
			if len(rt.Segments) != len(rt.Path) {
				t.Fatalf("trial %d route %d: %d segments for path of %d nodes", trial, ri, len(rt.Segments), len(rt.Path))
			}
			if rt.Hops != len(rt.Path)-2 {
				t.Fatalf("trial %d route %d: Hops=%d path=%v", trial, ri, rt.Hops, rt.Path)
			}
			if pref == SecureOnly && !rt.Secure {
				t.Fatalf("trial %d route %d: insecure route from SecureOnly query", trial, ri)
			}
			if rt.BaseOneWay <= 0 || rt.BottleneckBps <= 0 {
				t.Fatalf("trial %d route %d: degenerate attributes %+v", trial, ri, rt)
			}
		}
	}
}
