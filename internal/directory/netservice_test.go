package directory

import (
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/token"
)

// netServiceFixture serves the diamond topology with R1 token-guarded,
// over a real HTTP listener.
func netServiceFixture(t *testing.T, expect int) (*Client, *Service) {
	t.Helper()
	svc := NewService(sim.NewEngine(0), diamond())
	svc.RegisterAuthority("R1", token.NewAuthority([]byte("net-svc-key")))
	ns := NewNetService(svc, expect)
	srv := httptest.NewServer(ns.Handler())
	t.Cleanup(srv.Close)
	return NewClient(srv.URL), svc
}

// TestNetServiceRouteParity pins the property the cross-process runs
// depend on: a route fetched over HTTP is identical — segments, port
// tokens, path, attributes — to the same query answered in-process.
// Token issue is deterministic HMAC, so even the token bytes match.
func TestNetServiceRouteParity(t *testing.T) {
	client, svc := netServiceFixture(t, 1)
	q := Query{From: "hA", To: "hB", Pref: MinDelay, Account: 42, Count: 2}

	local, err := svc.Routes(q)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := client.Routes(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != len(local) {
		t.Fatalf("remote returned %d routes, local %d", len(remote), len(local))
	}
	for i := range local {
		if !reflect.DeepEqual(normalize(local[i]), normalize(remote[i])) {
			t.Fatalf("route %d diverges across the wire:\nlocal:  %+v\nremote: %+v", i, local[i], remote[i])
		}
	}
	// The guarded hop must actually carry a token after the round trip.
	found := false
	for _, s := range remote[0].Segments {
		if len(s.PortToken) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no segment of the remote route carries a port token")
	}
}

// normalize maps empty byte slices to nil so JSON round-tripping of
// zero-length fields (nil vs []byte{}) does not read as divergence —
// both encode to the same wire bytes.
func normalize(r Route) Route {
	for i := range r.Segments {
		if len(r.Segments[i].PortToken) == 0 {
			r.Segments[i].PortToken = nil
		}
		if len(r.Segments[i].PortInfo) == 0 {
			r.Segments[i].PortInfo = nil
		}
	}
	return r
}

// TestNetServiceRegistrationAndBarrier walks the cluster-formation
// protocol: peers register, discover the full sorted set, and a
// barrier releases exactly when the last expected peer arrives.
func TestNetServiceRegistrationAndBarrier(t *testing.T) {
	client, _ := netServiceFixture(t, 2)

	if _, err := client.Register(PeerReg{Name: "peer1", UDPAddr: "127.0.0.1:1111", Nodes: []string{"R1"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Register(PeerReg{Name: "peer0", UDPAddr: "127.0.0.1:1110", Nodes: []string{"R2"}}); err != nil {
		t.Fatal(err)
	}
	peers, err := client.WaitPeers(2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if peers[0].Name != "peer0" || peers[1].Name != "peer1" {
		t.Fatalf("peer set not sorted by name: %+v", peers)
	}

	// First arrival parks; the barrier opens when the second posts.
	var wg sync.WaitGroup
	released := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := client.Barrier("peer0", "up"); err != nil {
			t.Errorf("barrier peer0: %v", err)
		}
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("barrier released before all peers arrived")
	case <-time.After(50 * time.Millisecond):
	}
	if err := client.Barrier("peer1", "up"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestNetServiceUsageAndReports covers the accounting and result
// edges: usage posts merge into the directory's bill, and reports
// stay 202-incomplete until every peer has filed.
func TestNetServiceUsageAndReports(t *testing.T) {
	client, _ := netServiceFixture(t, 2)

	if err := client.ReportUsage("R1", map[uint32]token.Usage{7: {Packets: 3, Bytes: 300}}); err != nil {
		t.Fatal(err)
	}
	if err := client.ReportUsage("R2", map[uint32]token.Usage{7: {Packets: 1, Bytes: 50}}); err != nil {
		t.Fatal(err)
	}
	bill, err := client.Bill()
	if err != nil {
		t.Fatal(err)
	}
	if got := bill[7]; got.Packets != 4 || got.Bytes != 350 {
		t.Fatalf("bill[7] = %+v, want merged {4, 350}", got)
	}

	type blob struct{ Delivered int }
	if err := client.Report("peer0", blob{Delivered: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Reports(50 * time.Millisecond); err == nil {
		t.Fatal("Reports completed with only 1/2 peers reporting")
	}
	if err := client.Report("peer1", blob{Delivered: 6}); err != nil {
		t.Fatal(err)
	}
	reps, err := client.Reports(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("got %d reports, want 2", len(reps))
	}
}
