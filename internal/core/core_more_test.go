package core

import (
	"testing"

	"repro/internal/directory"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/vmtp"
)

func TestLinkFailRestoreCycle(t *testing.T) {
	n := buildCampus(11, router.Config{})
	q := directory.Query{From: "hA", To: "hB", Pref: directory.MinDelay, Endpoint: 1}
	r1, err := n.Routes(q)
	if err != nil {
		t.Fatal(err)
	}
	primary := r1[0].Path[1]
	n.FailLink(primary, pairOf(primary))
	r2, err := n.Routes(q)
	if err != nil {
		t.Fatal(err)
	}
	if r2[0].Path[1] == primary {
		t.Fatal("route still uses failed trunk")
	}
	n.RestoreLink(primary, pairOf(primary))
	r3, err := n.Routes(q)
	if err != nil {
		t.Fatal(err)
	}
	if r3[0].Path[1] != primary {
		t.Fatalf("route did not return to the primary after restore: %v", r3[0].Path)
	}
	if _, ok := n.Link(primary, pairOf(primary)); !ok {
		t.Fatal("Link lookup failed")
	}
}

func pairOf(r string) string {
	if r == "R1" {
		return "R2"
	}
	return "R4"
}

func TestAccessors(t *testing.T) {
	n := buildCampus(12, router.Config{})
	if n.Host("hA") == nil || n.Router("R1") == nil {
		t.Fatal("lookup failed")
	}
	if n.HostClock("hA") == nil {
		t.Fatal("no host clock")
	}
	if n.Graph() == nil || n.Directory() == nil {
		t.Fatal("no graph/directory")
	}
	n.RunFor(sim.Millisecond)
	if n.Eng.Now() != sim.Millisecond {
		t.Fatalf("RunFor landed at %v", n.Eng.Now())
	}
}

func TestMTUOptionAppliesToMediumAndRoutes(t *testing.T) {
	n := New(13)
	n.AddHost("a")
	n.AddHost("b")
	n.AddRouter("R", router.Config{})
	n.Connect("a", 1, "R", 1, 10e6, 0)
	n.Connect("R", 2, "b", 1, 10e6, 0, MTU(600))
	l, _ := n.Link("R", "b")
	if l.AB.MTU() != 600 {
		t.Fatalf("medium MTU = %d", l.AB.MTU())
	}
	routes, err := n.Routes(directory.Query{From: "a", To: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if routes[0].MTU != 600 {
		t.Fatalf("route MTU = %d", routes[0].MTU)
	}
}

// TestRouterRebootSoftState verifies §2.2's soft-state claim end to end:
// a router crash discards its token cache, queues and rate limits, and
// traffic recovers without any reconfiguration — tokens re-verify on
// demand and the transport retransmits what the crash ate.
func TestRouterRebootSoftState(t *testing.T) {
	n := buildCampus(14, router.Config{})
	n.GuardRouter("R1", []byte("k"), 2)
	client := n.NewEndpoint("hA", 1, 1, vmtp.Config{BaseTimeout: 20 * sim.Millisecond, MaxRetries: 5})
	server := n.NewEndpoint("hB", 2, 1, vmtp.Config{})
	server.SetHandler(func(from uint64, data []byte) []byte { return data })
	routes, err := n.Routes(directory.Query{From: "hA", To: "hB", Pref: directory.MinDelay, Endpoint: 1, Account: 5})
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	call := func() {
		client.Call(server.ID(), SegmentsOf(routes[:1]), []byte("x"), func(resp []byte, err error) {
			if err == nil {
				done++
			}
		})
	}
	n.Eng.Schedule(0, call)
	n.RunFor(sim.Second)
	if done != 1 {
		t.Fatal("pre-crash call failed")
	}
	if n.Router("R1").TokenCache().Len() == 0 {
		t.Fatal("token cache empty before crash")
	}
	n.Router("R1").Reboot()
	if n.Router("R1").TokenCache().Len() != 0 {
		t.Fatal("Reboot did not flush the token cache")
	}
	n.Eng.Schedule(0, call)
	n.RunFor(2 * sim.Second)
	if done != 2 {
		t.Fatal("post-crash call failed: soft state did not rebuild")
	}
	if n.Router("R1").TokenCache().Verifies < 2 {
		t.Fatalf("token not re-verified after reboot: %d verifies", n.Router("R1").TokenCache().Verifies)
	}
}

// TestMultiHomedHost reproduces §4.1/§2.2's multi-homing argument: a
// VMTP entity on a host with two interfaces stays reachable when one
// interface's network fails, because the entity identifier is
// independent of any network address — the client just uses a route via
// the other interface. (The paper contrasts this with TCP, which binds
// connections to a host interface address.)
func TestMultiHomedHost(t *testing.T) {
	n := New(15)
	n.AddEthernet("netA", 10e6, 5*sim.Microsecond)
	n.AddHost("client")
	n.AddHost("server")
	n.AddRouter("R1", router.Config{})
	n.AddRouter("R2", router.Config{})
	n.Attach("client", "netA", 1)
	n.Attach("R1", "netA", 1)
	n.Attach("R2", "netA", 1)
	// The server is multi-homed: interface 1 via R1, interface 2 via R2.
	n.Connect("R1", 2, "server", 1, 10e6, 100*sim.Microsecond)
	n.Connect("R2", 2, "server", 2, 10e6, 100*sim.Microsecond)

	client := n.NewEndpoint("client", 0xC, 1, vmtp.Config{BaseTimeout: 10 * sim.Millisecond, MaxRetries: 1})
	server := n.NewEndpoint("server", 0x5, 1, vmtp.Config{})
	server.SetHandler(func(from uint64, data []byte) []byte { return []byte("still here") })

	routes, err := n.Routes(directory.Query{From: "client", To: "server", Count: 2, Endpoint: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) < 2 {
		t.Fatalf("want 2 routes (one per server interface), got %d", len(routes))
	}
	// Kill the interface the preferred route lands on.
	n.FailLink(routes[0].Path[1], "server")
	ok := false
	n.Eng.Schedule(0, func() {
		client.Call(server.ID(), SegmentsOf(routes), []byte("ping"), func(resp []byte, err error) {
			ok = err == nil
		})
	})
	n.RunUntil(5 * sim.Second)
	if !ok {
		t.Fatal("multi-homed server unreachable after one interface failed")
	}
	if client.Stats.RouteFailovers != 1 {
		t.Fatalf("RouteFailovers = %d", client.Stats.RouteFailovers)
	}
}

// TestEntityMigration reproduces §4.1: "the network-independent
// addressing in VMTP is used to support process migration". The server
// entity moves to a different host; the client re-queries routes to the
// new location and keeps using the SAME 64-bit entity identifier.
func TestEntityMigration(t *testing.T) {
	n := buildCampus(16, router.Config{})
	const entityID = 0x5E12
	client := n.NewEndpoint("hA", 0xC, 1, vmtp.Config{})
	serve := func(host string) *vmtp.Endpoint {
		ep := n.NewEndpoint(host, entityID, 1, vmtp.Config{})
		ep.SetHandler(func(from uint64, data []byte) []byte {
			return []byte("served from " + host)
		})
		return ep
	}
	serve("hB")
	routesB, err := n.Routes(directory.Query{From: "hA", To: "hB", Endpoint: 1})
	if err != nil {
		t.Fatal(err)
	}
	var got1 []byte
	n.Eng.Schedule(0, func() {
		client.Call(entityID, SegmentsOf(routesB), []byte("q"), func(resp []byte, err error) { got1 = resp })
	})
	n.RunFor(sim.Second)
	if string(got1) != "served from hB" {
		t.Fatalf("pre-migration response %q", got1)
	}

	// Migrate: the entity re-registers on hC; the client re-resolves.
	serve("hC")
	routesC, err := n.Routes(directory.Query{From: "hA", To: "hC", Endpoint: 1})
	if err != nil {
		t.Fatal(err)
	}
	var got2 []byte
	n.Eng.Schedule(0, func() {
		client.Call(entityID, SegmentsOf(routesC), []byte("q"), func(resp []byte, err error) { got2 = resp })
	})
	n.RunFor(sim.Second)
	if string(got2) != "served from hC" {
		t.Fatalf("post-migration response %q", got2)
	}
}
