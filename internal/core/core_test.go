package core

import (
	"bytes"
	"testing"

	"repro/internal/directory"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/vmtp"
)

// buildCampus assembles the paper's style of internetwork:
//
//	hA, hC on net1 --- R1 ===trunk-fast(insecure)=== R2 --- net2 with hB
//	              \--- R3 ===trunk-slow(secure)===== R4 ---/
func buildCampus(seed int64, rcfg router.Config) *Internetwork {
	n := New(seed)
	n.AddEthernet("net1", 10e6, 5*sim.Microsecond)
	n.AddEthernet("net2", 10e6, 5*sim.Microsecond)
	n.AddHost("hA")
	n.AddHost("hB")
	n.AddHost("hC")
	n.AddRouter("R1", rcfg)
	n.AddRouter("R2", rcfg)
	n.AddRouter("R3", rcfg)
	n.AddRouter("R4", rcfg)
	n.Attach("hA", "net1", 1)
	n.Attach("hC", "net1", 1)
	n.Attach("R1", "net1", 1)
	n.Attach("R3", "net1", 1)
	n.Attach("hB", "net2", 1)
	n.Attach("R2", "net2", 2)
	n.Attach("R4", "net2", 2)
	n.Connect("R1", 2, "R2", 1, 45e6, 2*sim.Millisecond, Insecure(), Cost(5))
	n.Connect("R3", 2, "R4", 1, 1.5e6, 2*sim.Millisecond, Secure(), Cost(1))
	return n
}

func TestFullStackRequestResponse(t *testing.T) {
	n := buildCampus(1, router.Config{})
	client := n.NewEndpoint("hA", 0xAAA, 1, vmtp.Config{})
	server := n.NewEndpoint("hB", 0xBBB, 1, vmtp.Config{})
	server.SetHandler(func(from uint64, data []byte) []byte {
		return append([]byte("re: "), data...)
	})

	routes, err := n.Routes(directory.Query{From: "hA", To: "hB", Pref: directory.MinDelay, Count: 2, Endpoint: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(routes) != 2 {
		t.Fatalf("%d routes", len(routes))
	}

	var got []byte
	n.Eng.Schedule(0, func() {
		client.Call(server.ID(), SegmentsOf(routes), []byte("hello"), func(resp []byte, err error) {
			if err != nil {
				t.Errorf("Call: %v", err)
				return
			}
			got = resp
		})
	})
	n.Run()
	if !bytes.Equal(got, []byte("re: hello")) {
		t.Fatalf("resp = %q", got)
	}
	// The request went via the fast trunk (MinDelay): R1 and R2 saw it.
	if n.Router("R1").Stats.Arrivals == 0 || n.Router("R2").Stats.Arrivals == 0 {
		t.Error("fast-path routers saw no traffic")
	}
	if n.Router("R3").Stats.Arrivals != 0 {
		t.Error("slow-path router saw traffic on a MinDelay route")
	}
}

func TestSecureRouteFullStack(t *testing.T) {
	n := buildCampus(2, router.Config{})
	client := n.NewEndpoint("hA", 1, 1, vmtp.Config{})
	server := n.NewEndpoint("hB", 2, 1, vmtp.Config{})
	server.SetHandler(func(from uint64, data []byte) []byte { return []byte("secret") })
	routes, err := n.Routes(directory.Query{From: "hA", To: "hB", Pref: directory.SecureOnly, Endpoint: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !routes[0].Secure {
		t.Fatal("route not secure")
	}
	ok := false
	n.Eng.Schedule(0, func() {
		client.Call(server.ID(), SegmentsOf(routes), []byte("q"), func(resp []byte, err error) {
			ok = err == nil
		})
	})
	n.Run()
	if !ok {
		t.Fatal("secure call failed")
	}
	if n.Router("R1").Stats.Arrivals != 0 {
		t.Error("secure traffic crossed the insecure trunk")
	}
	if n.Router("R3").Stats.Arrivals == 0 {
		t.Error("secure trunk unused")
	}
}

func TestTokensEndToEndViaDirectory(t *testing.T) {
	n := buildCampus(3, router.Config{})
	n.GuardRouter("R1", []byte("r1-secret"), 2)

	client := n.NewEndpoint("hA", 1, 1, vmtp.Config{})
	server := n.NewEndpoint("hB", 2, 1, vmtp.Config{})
	server.SetHandler(func(from uint64, data []byte) []byte { return []byte("ok") })

	// Route WITHOUT directory tokens is refused at R1: build it by
	// stripping tokens.
	routes, err := n.Routes(directory.Query{From: "hA", To: "hB", Pref: directory.MinDelay, Endpoint: 1, Account: 9})
	if err != nil {
		t.Fatal(err)
	}
	stripped := make([][]byte, len(routes[0].Segments))
	for i := range routes[0].Segments {
		stripped[i] = routes[0].Segments[i].PortToken
		routes[0].Segments[i].PortToken = nil
	}
	gotBare := false
	n.Eng.Schedule(0, func() {
		client.Call(server.ID(), SegmentsOf(routes[:1]), []byte("bare"), func(resp []byte, err error) {
			gotBare = err == nil
		})
	})
	n.RunUntil(2 * sim.Second)
	if gotBare {
		t.Fatal("token-guarded router forwarded a bare packet")
	}
	if n.Router("R1").Stats.DropCount(router.DropTokenDenied) == 0 {
		t.Fatal("no token denial recorded")
	}

	// Restore the directory-issued tokens: the call succeeds and the
	// router accounts usage to the client's account.
	for i := range routes[0].Segments {
		routes[0].Segments[i].PortToken = stripped[i]
	}
	gotTok := false
	n.Eng.Schedule(0, func() {
		client.Call(server.ID(), SegmentsOf(routes[:1]), []byte("tokenized"), func(resp []byte, err error) {
			gotTok = err == nil
		})
	})
	n.RunUntil(4 * sim.Second)
	if !gotTok {
		t.Fatal("tokenized call failed")
	}
	totals := n.Router("R1").TokenCache().AccountTotals()
	if totals[9].Packets == 0 {
		t.Fatalf("no accounting for account 9: %v", totals)
	}
}

func TestFailoverAcrossTrunksFullStack(t *testing.T) {
	n := buildCampus(4, router.Config{})
	client := n.NewEndpoint("hA", 1, 1, vmtp.Config{BaseTimeout: 20 * sim.Millisecond, MaxRetries: 1})
	server := n.NewEndpoint("hB", 2, 1, vmtp.Config{})
	server.SetHandler(func(from uint64, data []byte) []byte { return []byte("alive") })

	routes, err := n.Routes(directory.Query{From: "hA", To: "hB", Pref: directory.MinDelay, Count: 2, Endpoint: 1})
	if err != nil {
		t.Fatal(err)
	}
	n.FailLink("R1", "R2") // primary trunk dies before the call
	ok := false
	n.Eng.Schedule(0, func() {
		client.Call(server.ID(), SegmentsOf(routes), []byte("anyone?"), func(resp []byte, err error) {
			ok = err == nil
		})
	})
	n.RunUntil(5 * sim.Second)
	if !ok {
		t.Fatal("failover across trunks failed")
	}
	if client.Stats.RouteFailovers != 1 {
		t.Fatalf("RouteFailovers = %d", client.Stats.RouteFailovers)
	}
	// The directory, told of the failure, now advises the old route
	// stale and offers only the secure trunk.
	if n.Directory().Advise(&routes[0]) {
		t.Fatal("directory advises failed route healthy")
	}
	fresh, err := n.Routes(directory.Query{From: "hA", To: "hB", Pref: directory.MinDelay, Endpoint: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fresh[0].Path[1] != "R3" {
		t.Fatalf("fresh route = %v, want detour", fresh[0].Path)
	}
}

func TestNamedLookupFullStack(t *testing.T) {
	n := buildCampus(5, router.Config{})
	if err := n.Register("alpha.cs.stanford.edu", "hA"); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("beta.ee.stanford.edu", "hB"); err != nil {
		t.Fatal(err)
	}
	routes, err := n.Routes(directory.Query{From: "alpha.cs.stanford.edu", To: "beta.ee.stanford.edu", Endpoint: 1})
	if err != nil {
		t.Fatal(err)
	}
	if routes[0].Path[0] != "hA" {
		t.Fatalf("path = %v", routes[0].Path)
	}
}

func TestTwoHostsOneEthernetNoRouters(t *testing.T) {
	// Purely local communication: zero routers traversed — the dominant
	// case in the paper's locality model.
	n := New(6)
	n.AddEthernet("lan", 10e6, 5*sim.Microsecond)
	n.AddHost("a")
	n.AddHost("b")
	n.Attach("a", "lan", 1)
	n.Attach("b", "lan", 1)
	routes, err := n.Routes(directory.Query{From: "a", To: "b", Endpoint: 1})
	if err != nil {
		t.Fatal(err)
	}
	if routes[0].Hops != 0 {
		t.Fatalf("Hops = %d, want 0", routes[0].Hops)
	}
	client := n.NewEndpoint("a", 1, 1, vmtp.Config{})
	server := n.NewEndpoint("b", 2, 1, vmtp.Config{})
	server.SetHandler(func(from uint64, data []byte) []byte { return []byte("hi neighbor") })
	var got []byte
	n.Eng.Schedule(0, func() {
		client.Call(server.ID(), SegmentsOf(routes), []byte("hi"), func(resp []byte, err error) {
			if err == nil {
				got = resp
			}
		})
	})
	n.Run()
	if !bytes.Equal(got, []byte("hi neighbor")) {
		t.Fatalf("resp = %q", got)
	}
}

func TestConcurrentCallsManyClients(t *testing.T) {
	n := buildCampus(7, router.Config{})
	server := n.NewEndpoint("hB", 0xB0B, 1, vmtp.Config{})
	server.SetHandler(func(from uint64, data []byte) []byte { return data })

	routesA, err := n.Routes(directory.Query{From: "hA", To: "hB", Endpoint: 1, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	routesC, err := n.Routes(directory.Query{From: "hC", To: "hB", Endpoint: 1, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	ca := n.NewEndpoint("hA", 0xA, 1, vmtp.Config{})
	cc := n.NewEndpoint("hC", 0xC, 1, vmtp.Config{})
	done := 0
	for i := 0; i < 20; i++ {
		i := i
		n.Eng.Schedule(sim.Time(i)*sim.Millisecond, func() {
			ca.Call(server.ID(), SegmentsOf(routesA), []byte{byte(i)}, func(resp []byte, err error) {
				if err == nil && len(resp) == 1 && resp[0] == byte(i) {
					done++
				}
			})
			cc.Call(server.ID(), SegmentsOf(routesC), []byte{byte(100 + i)}, func(resp []byte, err error) {
				if err == nil && len(resp) == 1 && resp[0] == byte(100+i) {
					done++
				}
			})
		})
	}
	n.RunUntil(10 * sim.Second)
	if done != 40 {
		t.Fatalf("completed %d/40 transactions", done)
	}
}

func TestStringer(t *testing.T) {
	n := buildCampus(8, router.Config{})
	if s := n.String(); s == "" {
		t.Fatal("empty String")
	}
}
