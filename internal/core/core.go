// Package core assembles complete Sirpent internetworks: simulated
// Ethernets and point-to-point trunks (netsim), Sirpent routers and hosts
// (router), the routing directory fed from the topology as it is built
// (directory), per-host clocks (clock), and VMTP endpoints (vmtp).
//
// It is the package applications use:
//
//	net := core.New(1)
//	net.AddEthernet("net1", 10e6, 5*sim.Microsecond)
//	r := net.AddRouter("R", router.Config{})
//	...
//	routes, _ := net.Routes(directory.Query{From: "hA", To: "hB"})
//	client.Call(server.ID(), core.SegmentsOf(routes), data, done)
package core

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/directory"
	"repro/internal/ethernet"
	"repro/internal/ledger"
	"repro/internal/netsim"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/token"
	"repro/internal/trace"
	"repro/internal/viper"
	"repro/internal/vmtp"
)

// LinkOption tunes the directory attributes of a link or segment.
type LinkOption func(*directory.EdgeAttrs)

// Secure marks the link acceptable for secure routes.
func Secure() LinkOption { return func(a *directory.EdgeAttrs) { a.Secure = true } }

// Insecure marks the link unacceptable for secure routes (links default
// to secure).
func Insecure() LinkOption { return func(a *directory.EdgeAttrs) { a.Secure = false } }

// Cost sets the administrative cost per kilobyte.
func Cost(perKB float64) LinkOption { return func(a *directory.EdgeAttrs) { a.CostPerKB = perKB } }

// MTU sets the link MTU in bytes.
func MTU(n int) LinkOption { return func(a *directory.EdgeAttrs) { a.MTU = n } }

// Internetwork is a complete simulated Sirpent internetwork.
type Internetwork struct {
	Eng *sim.Engine

	routers  map[string]*router.Router
	hosts    map[string]*router.Host
	segments map[string]*netsim.EthernetSegment
	segAttrs map[string]directory.EdgeAttrs
	segSta   map[string][]station
	clocks   map[string]*clock.Clock
	links    []*netsim.P2PLink
	linkIdx  map[string]*netsim.P2PLink

	graph *directory.Graph
	dir   *directory.Service

	nextAddr uint64
}

type station struct {
	node string
	port uint8
	addr ethernet.Addr
}

// New creates an empty internetwork with a deterministic seed.
func New(seed int64) *Internetwork {
	eng := sim.NewEngine(seed)
	g := directory.NewGraph()
	return &Internetwork{
		Eng:      eng,
		routers:  make(map[string]*router.Router),
		hosts:    make(map[string]*router.Host),
		segments: make(map[string]*netsim.EthernetSegment),
		segAttrs: make(map[string]directory.EdgeAttrs),
		segSta:   make(map[string][]station),
		clocks:   make(map[string]*clock.Clock),
		linkIdx:  make(map[string]*netsim.P2PLink),
		graph:    g,
		dir:      directory.NewService(eng, g),
	}
}

// Directory returns the routing directory service.
func (n *Internetwork) Directory() *directory.Service { return n.dir }

// Graph returns the topology graph (for experiment harnesses).
func (n *Internetwork) Graph() *directory.Graph { return n.graph }

// AddRouter creates and registers a Sirpent router.
func (n *Internetwork) AddRouter(name string, cfg router.Config) *router.Router {
	if _, dup := n.routers[name]; dup {
		panic("core: duplicate router " + name)
	}
	r := router.New(n.Eng, name, cfg)
	n.routers[name] = r
	n.graph.AddNode(name, directory.KindRouter)
	return r
}

// AddHost creates and registers a host with its own (slightly skewed)
// clock.
func (n *Internetwork) AddHost(name string) *router.Host {
	if _, dup := n.hosts[name]; dup {
		panic("core: duplicate host " + name)
	}
	h := router.NewHost(n.Eng, name)
	n.hosts[name] = h
	n.graph.AddNode(name, directory.KindHost)
	n.clocks[name] = clock.NewRandom(n.Eng, n.Eng.Rand(), 200*sim.Millisecond, 100)
	return h
}

// Router returns a router by name.
func (n *Internetwork) Router(name string) *router.Router { return n.routers[name] }

// Host returns a host by name.
func (n *Internetwork) Host(name string) *router.Host { return n.hosts[name] }

// HostClock returns a host's clock.
func (n *Internetwork) HostClock(name string) *clock.Clock { return n.clocks[name] }

// AddEthernet creates a shared multi-access segment.
func (n *Internetwork) AddEthernet(name string, rateBps float64, prop sim.Time, opts ...LinkOption) *netsim.EthernetSegment {
	if _, dup := n.segments[name]; dup {
		panic("core: duplicate segment " + name)
	}
	seg := netsim.NewEthernetSegment(n.Eng, name, rateBps, prop)
	attrs := attrsFor(rateBps, prop, 0, opts)
	if attrs.MTU > 0 {
		seg.SetMTU(attrs.MTU)
	}
	n.segments[name] = seg
	n.segAttrs[name] = attrs
	return seg
}

// newAddr mints a unique station address.
func (n *Internetwork) newAddr() ethernet.Addr {
	n.nextAddr++
	return ethernet.AddrFromUint64(n.nextAddr)
}

// attrsFor builds directory attributes for a medium.
func attrsFor(rate float64, prop sim.Time, mtu int, opts []LinkOption) directory.EdgeAttrs {
	a := directory.EdgeAttrs{RateBps: rate, Prop: prop, MTU: mtu, Secure: true}
	for _, o := range opts {
		o(&a)
	}
	return a
}

// Attach connects a node (host or router) to an Ethernet segment with
// the given port/interface ID, recording topology edges to every other
// station on the segment. Link properties come from AddEthernet.
func (n *Internetwork) Attach(node, segment string, port uint8) {
	seg, ok := n.segments[segment]
	if !ok {
		panic("core: unknown segment " + segment)
	}
	addr := n.newAddr()
	var p *netsim.Port
	switch {
	case n.routers[node] != nil:
		p = seg.AttachStation(n.routers[node], port, addr)
		n.routers[node].AttachPort(p)
	case n.hosts[node] != nil:
		p = seg.AttachStation(n.hosts[node], port, addr)
		n.hosts[node].AttachPort(p)
	default:
		panic("core: unknown node " + node)
	}
	attrs := n.segAttrs[segment]
	st := station{node: node, port: port, addr: addr}
	for _, other := range n.segSta[segment] {
		if err := n.graph.AddEdge(directory.Edge{
			From: st.node, To: other.node, FromPort: st.port,
			FromStation: st.addr, ToStation: other.addr, Attrs: attrs,
		}); err != nil {
			panic(err)
		}
		if err := n.graph.AddEdge(directory.Edge{
			From: other.node, To: st.node, FromPort: other.port,
			FromStation: other.addr, ToStation: st.addr, Attrs: attrs,
		}); err != nil {
			panic(err)
		}
	}
	n.segSta[segment] = append(n.segSta[segment], st)
}

// Connect joins two nodes with a full-duplex point-to-point link.
func (n *Internetwork) Connect(a string, portA uint8, b string, portB uint8, rateBps float64, prop sim.Time, opts ...LinkOption) *netsim.P2PLink {
	na := n.node(a)
	nb := n.node(b)
	link := netsim.NewP2PLink(n.Eng, rateBps, prop)
	pa, pb := link.Attach(na, portA, nb, portB)
	n.attachPort(a, pa)
	n.attachPort(b, pb)
	attrs := attrsFor(rateBps, prop, 0, opts)
	if attrs.MTU > 0 {
		link.AB.SetMTU(attrs.MTU)
		link.BA.SetMTU(attrs.MTU)
	}
	if err := n.graph.AddEdge(directory.Edge{From: a, To: b, FromPort: portA, Attrs: attrs}); err != nil {
		panic(err)
	}
	if err := n.graph.AddEdge(directory.Edge{From: b, To: a, FromPort: portB, Attrs: attrs}); err != nil {
		panic(err)
	}
	n.links = append(n.links, link)
	n.linkIdx[linkKey(a, b)] = link
	n.linkIdx[linkKey(b, a)] = link
	return link
}

func linkKey(a, b string) string { return a + "\x00" + b }

// Link returns the p2p link between two nodes, if any.
func (n *Internetwork) Link(a, b string) (*netsim.P2PLink, bool) {
	l, ok := n.linkIdx[linkKey(a, b)]
	return l, ok
}

// FailLink takes the a<->b link down and records the failure in the
// directory (as a monitoring report would, §3).
func (n *Internetwork) FailLink(a, b string) {
	if l, ok := n.Link(a, b); ok {
		l.SetDown(true)
	}
	n.dir.ReportDown(a, b)
}

// RestoreLink brings the a<->b link back.
func (n *Internetwork) RestoreLink(a, b string) {
	if l, ok := n.Link(a, b); ok {
		l.SetDown(false)
	}
	n.dir.ReportUp(a, b)
}

func (n *Internetwork) node(name string) netsim.Node {
	if r, ok := n.routers[name]; ok {
		return r
	}
	if h, ok := n.hosts[name]; ok {
		return h
	}
	panic("core: unknown node " + name)
}

func (n *Internetwork) attachPort(name string, p *netsim.Port) {
	if r, ok := n.routers[name]; ok {
		r.AttachPort(p)
		return
	}
	n.hosts[name].AttachPort(p)
}

// GuardRouter installs a token authority on a router, requires tokens on
// the given ports, and registers the authority with the directory so
// routes through the router carry tokens (§2.2 + §3).
func (n *Internetwork) GuardRouter(name string, key []byte, ports ...uint8) *token.Authority {
	r, ok := n.routers[name]
	if !ok {
		panic("core: unknown router " + name)
	}
	auth := token.NewAuthority(key)
	r.SetTokenAuthority(auth)
	for _, p := range ports {
		r.RequireToken(p)
	}
	n.dir.RegisterAuthority(name, auth)
	return auth
}

// CollectAccounting sweeps every token-guarded router's accounting cache
// into the directory's billing database (§3: authorization, accounting
// and routing share the directory's mechanisms). Returns the aggregated
// per-account totals.
func (n *Internetwork) CollectAccounting() map[uint32]token.Usage {
	for name, r := range n.routers {
		if c := r.TokenCache(); c != nil {
			n.dir.ReportUsage(name, c.AccountTotals())
		}
	}
	return n.dir.Bill()
}

// SetTracer installs a hop tracer on every host currently in the
// internetwork: packets sent by any host open a trace record that rides
// the packet through routers and media. Call after the topology is
// built; hosts added later start untraced. Pass nil to disable.
func (n *Internetwork) SetTracer(t trace.Tracer) {
	for _, h := range n.hosts {
		h.SetTracer(t)
	}
}

// SetFlightRecorder installs an anomaly ring buffer on every router
// currently in the internetwork and hooks every point-to-point link so
// FailLink/RestoreLink flaps are recorded. Like SetTracer, call after
// the topology is built. Pass nil to disable.
func (n *Internetwork) SetFlightRecorder(fr *ledger.FlightRecorder) {
	for _, r := range n.routers {
		r.SetFlightRecorder(fr)
	}
	seen := make(map[*netsim.P2PLink]bool)
	for key, l := range n.linkIdx {
		if seen[l] {
			continue
		}
		seen[l] = true
		if fr == nil {
			l.OnFlap = nil
			continue
		}
		name := linkName(key)
		l := l
		l.OnFlap = func(down bool) {
			reason := "up"
			if down {
				reason = "down"
			}
			fr.Record(ledger.Event{
				At: int64(n.Eng.Now()), Node: name,
				Kind: ledger.KindLinkFlap, Reason: reason,
			})
		}
	}
}

// linkName renders a linkIdx key ("a\x00b") as "a<->b".
func linkName(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == '\x00' {
			return key[:i] + "<->" + key[i+1:]
		}
	}
	return key
}

// LedgerCollector builds a collector over the internetwork: every
// token-guarded router contributes an account source (its cache's
// AccountTotals) and every router a congestion-telemetry source. Sweep
// with Collect at virtual-time points of interest.
func (n *Internetwork) LedgerCollector(l *ledger.Ledger) *ledger.Collector {
	c := ledger.NewCollector(l)
	for name, r := range n.routers {
		if cache := r.TokenCache(); cache != nil {
			c.AddAccountSource(name, cache.AccountTotals)
		}
		c.AddCongestionSource(name, r.RateTelemetry)
	}
	return c
}

// Register binds a hierarchical name to a node in the directory.
func (n *Internetwork) Register(name, node string) error {
	return n.dir.Register(name, node)
}

// Routes queries the directory.
func (n *Internetwork) Routes(q directory.Query) ([]directory.Route, error) {
	return n.dir.Routes(q)
}

// SegmentsOf extracts the segment lists from directory routes, the form
// vmtp.Endpoint.Call consumes.
func SegmentsOf(routes []directory.Route) [][]viper.Segment {
	out := make([][]viper.Segment, len(routes))
	for i := range routes {
		out[i] = routes[i].Segments
	}
	return out
}

// NewEndpoint creates a VMTP entity on a host, using the host's clock.
func (n *Internetwork) NewEndpoint(host string, id uint64, hostEndpoint uint8, cfg vmtp.Config) *vmtp.Endpoint {
	h, ok := n.hosts[host]
	if !ok {
		panic("core: unknown host " + host)
	}
	return vmtp.NewEndpoint(n.Eng, h, n.clocks[host], id, hostEndpoint, cfg)
}

// Run drains all events; RunFor / RunUntil bound virtual time.
func (n *Internetwork) Run()                { n.Eng.Run() }
func (n *Internetwork) RunFor(d sim.Time)   { n.Eng.RunFor(d) }
func (n *Internetwork) RunUntil(t sim.Time) { n.Eng.RunUntil(t) }

// String summarizes the internetwork.
func (n *Internetwork) String() string {
	return fmt.Sprintf("internetwork{%d hosts, %d routers, %d segments, %d links}",
		len(n.hosts), len(n.routers), len(n.segments), len(n.links))
}
