package core

import (
	"testing"

	"repro/internal/directory"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/vmtp"
)

// TestAccountingCollection checks §3's merged routing+accounting story:
// two clients with different accounts cross a token-guarded transit
// router; the directory's billing sweep attributes usage to each.
func TestAccountingCollection(t *testing.T) {
	n := buildCampus(21, router.Config{})
	n.GuardRouter("R1", []byte("k1"), 2)
	n.GuardRouter("R2", []byte("k2"), 2)

	server := n.NewEndpoint("hB", 0xB, 1, vmtp.Config{})
	server.SetHandler(func(from uint64, data []byte) []byte { return data })

	mkClient := func(host string, id uint64, account uint32, calls int) {
		c := n.NewEndpoint(host, id, 1, vmtp.Config{})
		routes, err := n.Routes(directory.Query{
			From: host, To: "hB", Pref: directory.MinDelay, Endpoint: 1, Account: account,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < calls; i++ {
			i := i
			n.Eng.Schedule(sim.Time(i*5)*sim.Millisecond, func() {
				c.Call(server.ID(), SegmentsOf(routes[:1]), make([]byte, 400), func([]byte, error) {})
			})
		}
	}
	mkClient("hA", 0xA, 100, 4)
	mkClient("hC", 0xC, 200, 2)
	n.RunUntil(2 * sim.Second)

	bill := n.CollectAccounting()
	a, b := bill[100], bill[200]
	if a.Packets == 0 || b.Packets == 0 {
		t.Fatalf("missing usage: %+v", bill)
	}
	if a.Packets <= b.Packets {
		t.Fatalf("account 100 (%d pkts) should exceed account 200 (%d pkts)", a.Packets, b.Packets)
	}
	if a.Bytes == 0 || b.Bytes == 0 {
		t.Fatal("byte accounting missing")
	}
	// A second sweep replaces, not double-counts.
	bill2 := n.CollectAccounting()
	if bill2[100] != a || bill2[200] != b {
		t.Fatalf("resweep changed totals: %+v vs %+v/%+v", bill2, a, b)
	}
}
