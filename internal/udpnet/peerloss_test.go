package udpnet

import (
	"testing"

	"repro/internal/ledger"
	"repro/internal/livenet"
)

// detectorFixture builds a tunnel with a real inner link but no
// socket, for driving the peer-loss state machine directly.
func detectorFixture(t *testing.T) (*Tunnel, *ledger.FlightRecorder) {
	t.Helper()
	fr := ledger.NewFlightRecorder(16)
	netw := livenet.NewNetwork()
	t.Cleanup(func() { netw.Stop() })
	r := netw.NewRouter("r")
	h := netw.NewHost("gw")
	link := netw.Connect(r, 2, h, 1)
	return &Tunnel{
		bridge: &Bridge{node: "proc", flight: fr},
		linkID: 7,
		inner:  link,
	}, fr
}

// TestPeerLossDetector pins the consecutive-write-failure contract:
// below the threshold nothing changes, at the threshold the peer is
// declared lost and the inner link marked down (flight-recorded), and
// one successful write restores both.
func TestPeerLossDetector(t *testing.T) {
	tun, fr := detectorFixture(t)

	for i := 0; i < PeerLossThreshold-1; i++ {
		tun.noteSendError()
	}
	if tun.PeerLost() || tun.inner.IsDown() {
		t.Fatalf("peer declared lost after %d errors, threshold is %d", PeerLossThreshold-1, PeerLossThreshold)
	}

	tun.noteSendError()
	if !tun.PeerLost() || !tun.inner.IsDown() || !tun.IsDown() {
		t.Fatal("threshold reached but peer not declared lost / inner link not down")
	}
	var flaps int
	for _, ev := range fr.Events() {
		if ev.Kind == ledger.KindLinkFlap {
			flaps++
		}
	}
	if flaps == 0 {
		t.Fatal("peer loss not flight-recorded as a link flap")
	}

	// Further errors must not re-record the transition.
	tun.noteSendError()
	var after int
	for _, ev := range fr.Events() {
		if ev.Kind == ledger.KindLinkFlap {
			after++
		}
	}
	if after != flaps {
		t.Fatalf("repeated errors re-recorded the transition: %d -> %d flap events", flaps, after)
	}

	tun.noteSendOK()
	if tun.PeerLost() || tun.inner.IsDown() || tun.IsDown() {
		t.Fatal("successful write did not restore the peer")
	}
}

// TestPeerLossRespectsExplicitDown checks recovery does not override
// an operator's SetDown: after the peer comes back, an explicitly
// downed tunnel keeps its inner link down.
func TestPeerLossRespectsExplicitDown(t *testing.T) {
	tun, _ := detectorFixture(t)

	tun.SetDown(true)
	if !tun.inner.IsDown() {
		t.Fatal("SetDown(true) did not propagate to the inner link")
	}
	for i := 0; i < PeerLossThreshold; i++ {
		tun.noteSendError()
	}
	tun.noteSendOK()
	if tun.PeerLost() {
		t.Fatal("recovery did not clear peer-loss state")
	}
	if !tun.inner.IsDown() {
		t.Fatal("peer recovery overrode explicit SetDown")
	}
	tun.SetDown(false)
	if tun.inner.IsDown() {
		t.Fatal("SetDown(false) did not restore the inner link")
	}
}
