package udpnet_test

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/livenet"
	"repro/internal/trace"
	"repro/internal/udpnet"
	"repro/internal/viper"
)

// twoProcessTopology builds the smallest cross-socket internetwork:
// two livenet networks ("processes"), each one router with a local
// host, the routers peered over real localhost UDP via link 7.
//
//	srcH -1- rA -2- [udp tunnel] -2- rB -3- dstH
//
// Port numbers match what a single-process run connecting rA:2<->rB:2
// directly would use, so return segments record the same ports.
func twoProcessTopology(t *testing.T) (src, dst *livenet.Host, ta, tb *udpnet.Tunnel) {
	t.Helper()

	netA := livenet.NewNetwork()
	t.Cleanup(netA.Stop)
	netB := livenet.NewNetwork()
	t.Cleanup(netB.Stop)

	bA, err := udpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bA.Close() })
	bB, err := udpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bB.Close() })

	rA := netA.NewRouter("rA")
	src = netA.NewHost("srcH")
	netA.Connect(src, 1, rA, 1)

	rB := netB.NewRouter("rB")
	dst = netB.NewHost("dstH")
	netB.Connect(rB, 3, dst, 1)

	ta, err = bA.Attach(netA, rA, 2, 7, udpnet.WithRemote(bB.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	tb, err = bB.Attach(netB, rB, 2, 7, udpnet.WithRemote(bA.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	return src, dst, ta, tb
}

func waitFor(t *testing.T, what string, f func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !f() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// crossRoute is the source route from srcH to dstH: own directive,
// rA's tunnel port, rB's host port, local delivery.
func crossRoute() []viper.Segment {
	return []viper.Segment{
		{Port: 1},
		{Port: 2, Flags: viper.FlagVNT},
		{Port: 3, Flags: viper.FlagVNT},
		{Port: viper.PortLocal},
	}
}

// TestTunnelRoundTrip drives a request across the socket and a reply
// back along the accumulated return route — the §2.3 claim that the
// foreign transport is one reversible logical hop. The reply's
// arrival proves the far router's trailer surgery recorded the tunnel
// port exactly as a direct link would.
func TestTunnelRoundTrip(t *testing.T) {
	src, dst, ta, tb := twoProcessTopology(t)

	var replied atomic.Uint64
	src.Handle(0, func(d livenet.Delivery) {
		if string(d.Data) == "pong" {
			replied.Add(1)
		}
	})
	dst.Handle(0, func(d livenet.Delivery) {
		if err := dst.Send(d.ReturnRoute, []byte("pong")); err != nil {
			t.Errorf("reply: %v", err)
		}
	})

	if err := src.Send(crossRoute(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "reply across the tunnel", func() bool { return replied.Load() == 1 })

	sa, sb := ta.Stats(), tb.Stats()
	if sa.Encapsulated != 1 || sa.Decapsulated != 1 {
		t.Fatalf("tunnel A stats = %+v, want 1 encapsulated + 1 decapsulated", sa)
	}
	if sb.Encapsulated != 1 || sb.Decapsulated != 1 {
		t.Fatalf("tunnel B stats = %+v, want 1 encapsulated + 1 decapsulated", sb)
	}
}

// TestTunnelFaultHandles checks the Link-parity fault vocabulary: a
// down tunnel discards and counts, restoring it heals, and full loss
// on one side starves delivery while Dropped attributes every frame.
func TestTunnelFaultHandles(t *testing.T) {
	src, dst, ta, _ := twoProcessTopology(t)

	var delivered atomic.Uint64
	dst.Handle(0, func(livenet.Delivery) { delivered.Add(1) })

	ta.SetDown(true)
	if err := src.Send(crossRoute(), []byte("into the void")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "down-tunnel drop", func() bool { return ta.Dropped() == 1 })
	if delivered.Load() != 0 {
		t.Fatal("delivery through a down tunnel")
	}

	ta.SetDown(false)
	if err := src.Send(crossRoute(), []byte("healed")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery after restore", func() bool { return delivered.Load() == 1 })

	ta.SetLossRatio(1.0)
	for i := 0; i < 5; i++ {
		if err := src.Send(crossRoute(), []byte("lost")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "loss-lottery drops", func() bool { return ta.Dropped() == 6 })
	if got := delivered.Load(); got != 1 {
		t.Fatalf("delivered %d frames through a fully lossy tunnel, want 1", got)
	}
}

// TestBridgeDecodeErrors feeds the socket garbage — short datagrams,
// bad magic, wrong version, an unattached link — and checks each is
// counted at the bridge and none reaches a tunnel.
func TestBridgeDecodeErrors(t *testing.T) {
	b, err := udpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	netw := livenet.NewNetwork()
	defer netw.Stop()
	r := netw.NewRouter("r")
	tun, err := b.Attach(netw, r, 2, 9)
	if err != nil {
		t.Fatal(err)
	}

	c, err := net.DialUDP("udp", nil, b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	garbage := [][]byte{
		{'S', 'I'},                              // short
		{'N', 'O', 'P', 'E', 1, 1, 0, 9, 0xAA},  // bad magic
		{'S', 'I', 'R', 'P', 99, 1, 0, 9, 0xAA}, // bad version
		{'S', 'I', 'R', 'P', 1, 1, 0, 13, 0xAA}, // unknown link
	}
	for _, g := range garbage {
		if _, err := c.Write(g); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "bridge decode errors", func() bool { return b.DecodeErrors() == uint64(len(garbage)) })

	// Known link, bad type / empty payload: counted at the tunnel.
	if _, err := c.Write([]byte{'S', 'I', 'R', 'P', 1, 0x7F, 0, 9, 0xAA}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte{'S', 'I', 'R', 'P', 1, 1, 0, 9}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "tunnel decode errors", func() bool { return tun.Stats().DecodeErrors == 2 })
	if s := tun.Stats(); s.Decapsulated != 0 {
		t.Fatalf("garbage decapsulated: %+v", s)
	}
}

// TestAttachDuplicateLink pins the demux invariant: linkID is the
// demux key, so attaching it twice on one bridge must fail.
func TestAttachDuplicateLink(t *testing.T) {
	b, err := udpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	netw := livenet.NewNetwork()
	defer netw.Stop()
	r := netw.NewRouter("r")
	if _, err := b.Attach(netw, r, 2, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Attach(netw, r, 3, 4); err == nil {
		t.Fatal("duplicate linkID attached")
	}
}

// TestSendWithoutRemote checks that frames sent before the peer
// address is known surface as send errors, and that SetRemote heals
// the tunnel without reattaching.
func TestSendWithoutRemote(t *testing.T) {
	netA := livenet.NewNetwork()
	defer netA.Stop()
	netB := livenet.NewNetwork()
	defer netB.Stop()

	bA, err := udpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bA.Close()
	bB, err := udpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bB.Close()

	rA := netA.NewRouter("rA")
	src := netA.NewHost("srcH")
	netA.Connect(src, 1, rA, 1)
	rB := netB.NewRouter("rB")
	dst := netB.NewHost("dstH")
	netB.Connect(rB, 3, dst, 1)

	ta, err := bA.Attach(netA, rA, 2, 7) // remote unknown
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bB.Attach(netB, rB, 2, 7, udpnet.WithRemote(bA.Addr())); err != nil {
		t.Fatal(err)
	}

	var delivered atomic.Uint64
	dst.Handle(0, func(livenet.Delivery) { delivered.Add(1) })

	if err := src.Send(crossRoute(), []byte("undeliverable")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "send error before discovery", func() bool { return ta.Stats().SendErrors == 1 })

	ta.SetRemote(bB.Addr())
	if err := src.Send(crossRoute(), []byte("discovered")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delivery after SetRemote", func() bool { return delivered.Load() == 1 })
}

// TestTracePropagationUnderLoss is the impairment contract for
// cluster tracing: with seeded loss on the forward tunnel and an
// application-level resend loop riding over it, every frame that does
// get through resumes the sender's trace ID on the far substrate —
// and no record leaks on either side. Specifically, at quiesce:
// finished == begun + resumed on both tracers, the receiver's
// "wire:<link>" span count equals its TracedRecv exactly, and every
// wire span's trace ID carries the sender's identity bits.
func TestTracePropagationUnderLoss(t *testing.T) {
	spansA, spansB := trace.NewSpans(64), trace.NewSpans(64)
	tracerA := trace.NewClusterTracer("A", 1<<48, 1, spansA, nil)
	tracerB := trace.NewClusterTracer("B", 2<<48, 1, spansB, nil)
	netA := livenet.NewNetwork(livenet.WithTracer(tracerA))
	t.Cleanup(netA.Stop)
	netB := livenet.NewNetwork(livenet.WithTracer(tracerB))
	t.Cleanup(netB.Stop)

	bA, err := udpnet.Listen("127.0.0.1:0", udpnet.WithTelemetry("A", spansA))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bA.Close() })
	bB, err := udpnet.Listen("127.0.0.1:0", udpnet.WithTelemetry("B", spansB))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bB.Close() })

	rA := netA.NewRouter("rA")
	src := netA.NewHost("srcH")
	netA.Connect(src, 1, rA, 1)
	rB := netB.NewRouter("rB")
	dst := netB.NewHost("dstH")
	netB.Connect(rB, 3, dst, 1)

	ta, err := bA.Attach(netA, rA, 2, 7, udpnet.WithRemote(bB.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := bB.Attach(netB, rB, 2, 7, udpnet.WithRemote(bA.Addr()))
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	seen := make(map[string]bool)
	dst.Handle(0, func(d livenet.Delivery) {
		mu.Lock()
		seen[string(d.Data)] = true
		mu.Unlock()
	})

	// Lossy forward path, reliable by retry: resend each message until
	// the receiving substrate has it. The resend loop is the impairment
	// — duplicates of the same payload carry distinct trace IDs (each
	// send is its own traced packet), so nothing about tracing may
	// assume at-most-once delivery.
	ta.SetLossRatio(0.5)
	const msgs = 10
	for i := 0; i < msgs; i++ {
		payload := []byte(fmt.Sprintf("m%02d", i))
		arrived := func() bool {
			mu.Lock()
			defer mu.Unlock()
			return seen[string(payload)]
		}
		deadline := time.Now().Add(5 * time.Second)
		for !arrived() {
			if time.Now().After(deadline) {
				t.Fatalf("message %d never crossed the lossy tunnel", i)
			}
			if err := src.Send(crossRoute(), payload); err != nil {
				t.Fatal(err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if ta.Dropped() == 0 {
		t.Fatal("loss ratio 0.5 dropped nothing — impairment not exercised")
	}

	// Quiesce: both tracers must account for every record they opened.
	waitFor(t, "tracer quiesce", func() bool {
		ba, ra, fa := tracerA.Counts()
		bb, rb, fb := tracerB.Counts()
		return fa == ba+ra && fb == bb+rb && fb > 0
	})
	begunA, _, _ := tracerA.Counts()
	_, resumedB, _ := tracerB.Counts()
	if begunA == 0 || resumedB == 0 {
		t.Fatalf("tracing never engaged: begunA=%d resumedB=%d", begunA, resumedB)
	}

	// The receiver's wire spans reconcile exactly with its traced
	// decapsulations, and every one names a trace the sender originated.
	snap := spansB.Snapshot()
	var wireCount int64
	for _, st := range snap.Stages {
		if st.Stage == "wire:7" {
			wireCount = st.Count
		}
	}
	tracedRecv := tb.Stats().TracedRecv
	if wireCount == 0 || uint64(wireCount) != tracedRecv {
		t.Fatalf("wire spans = %d, traced decapsulations = %d; want equal and nonzero", wireCount, tracedRecv)
	}
	for _, sp := range snap.Recent {
		if sp.Stage != "wire:7" {
			continue
		}
		if sp.Trace>>48 != 1 {
			t.Fatalf("wire span %x did not originate at sender A (identity bits %d)", sp.Trace, sp.Trace>>48)
		}
	}
}
