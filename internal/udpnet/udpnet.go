// Package udpnet bridges livenet ports onto real UDP sockets, so
// separate OS processes — each running its own livenet substrate —
// form one Sirpent internetwork. It is the process-boundary analogue
// of a livenet Link: a Tunnel carries the encoded VIPER bytes of one
// logical link inside UDP datagrams (the Sirpent-over-IP story of
// §2.3: the entire foreign transport is one source-route hop), and
// exposes the same fault handles a Link does — down, loss ratio,
// bounded depth — so conformance workloads can run over sockets with
// the exact failure vocabulary they use in-process.
//
// Topology-wise a Tunnel is a gateway Host wired to the bridged
// router port: frames the router transmits toward the gateway are
// tapped pre-decode (Host.SetRawHandler), framed, and written to the
// peer's socket; datagrams arriving from the peer are unframed and
// re-injected with Host.SendRaw. The router on each side sees an
// ordinary arrival on an ordinary port, so §6.2 trailer surgery,
// return routes, token charges, and ledger byte counts are identical
// to a direct in-process link — the property the cross-process
// conformance parity run (internal/daemon) pins.
//
// Encapsulation framing (all integers big-endian):
//
//	0      4       5      6        8
//	+------+-------+------+--------+----------------------+
//	| SIRP | vers  | type | linkID | encoded VIPER packet |
//	+------+-------+------+--------+----------------------+
//
// linkID names the logical link, not the peer: two processes may run
// parallel tunnels between the same socket pair, demuxed by linkID
// alone. Datagrams failing the header check are counted and dropped,
// never delivered — and, when the bridge has a flight recorder, each
// such anomaly (decode failure, unknown linkID, send error) is
// recorded with a stable ledger.Kind instead of vanishing into a bare
// counter.
//
// Frames whose livenet record carries a cross-process trace context
// (trace.Context, sampled by the peer's ClusterTracer) are framed as
// TypeTraced instead of TypeData: the header is followed by the
// 17-byte context plus the sender's wall-clock send stamp, then the
// VIPER bytes. The receiving tunnel records a "wire:<linkID>" span
// (send stamp → arrival, covering both queue dwell and socket time)
// and re-injects with the context so the trace continues in the next
// process. Untraced traffic is framed exactly as before — the traced
// path costs nothing when tracing is off.
package udpnet

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ledger"
	"repro/internal/livenet"
	"repro/internal/trace"
)

// Framing constants.
const (
	Version = 1

	// TypeData carries one encoded VIPER packet.
	TypeData = 0x01

	// TypeTraced carries one encoded VIPER packet prefixed by its
	// trace context and the sender's send stamp (tracedPrefixLen
	// bytes).
	TypeTraced = 0x02

	// HeaderLen is the encapsulation header size in bytes.
	HeaderLen = 8

	// tracedPrefixLen is the trace prefix of a TypeTraced payload:
	// the wire-form trace.Context followed by the sender's Unix-ns
	// send stamp.
	tracedPrefixLen = trace.ContextWireLen + 8

	// MaxDatagram bounds a received datagram; UDP itself cannot carry
	// more.
	MaxDatagram = 64 * 1024
)

var magic = [4]byte{'S', 'I', 'R', 'P'}

// DefaultTunnelDepth is the egress queue depth, in frames, of a
// Tunnel created without WithDepth — the socket-side analogue of
// livenet.DefaultLinkDepth.
const DefaultTunnelDepth = 64

// PeerLossThreshold is the number of consecutive socket write failures
// after which the tunnel declares its peer lost and marks the inner
// in-process link down — so the bridged router's port reads as dead
// and DAG-routed traffic fails over instead of draining into a black
// hole. One successful write clears the state.
const PeerLossThreshold = 3

// Stats is a point-in-time snapshot of one tunnel's counters.
type Stats struct {
	Encapsulated uint64 // frames framed and handed to the socket
	Decapsulated uint64 // datagrams unframed and injected into livenet
	DecodeErrors uint64 // datagrams for this link with a bad type or empty payload
	SendErrors   uint64 // socket write failures and injections into a stopped network
	Dropped      uint64 // fault-injection and queue-overflow discards
	TracedSent   uint64 // of Encapsulated: frames carrying a trace context
	TracedRecv   uint64 // of Decapsulated: frames whose context resumed a trace (one "wire" span each)
}

// Bridge owns one UDP socket and demuxes inbound datagrams to the
// tunnels attached to it. One Bridge per process is the intended
// shape — every tunnel the process terminates shares the socket, and
// peers address the process by its single UDP address.
type Bridge struct {
	conn   *net.UDPConn
	node   string                 // name recorded on flight events, default "udpnet"
	flight *ledger.FlightRecorder // anomaly sink, nil when unset (Record is nil-safe)
	spans  *trace.Spans           // wire-span sink, nil when unset (Record is nil-safe)

	mu      sync.RWMutex
	tunnels map[uint16]*Tunnel

	decodeErrors atomic.Uint64 // header-level garbage: bad magic/version/length, unknown link

	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// BridgeOption configures one Listen call.
type BridgeOption func(*Bridge)

// WithFlightRecorder routes tunnel-level anomalies — frame decode
// failures, unknown linkIDs, socket send errors — into fr as events
// with stable kinds, instead of leaving them as bare counters.
func WithFlightRecorder(fr *ledger.FlightRecorder) BridgeOption {
	return func(b *Bridge) { b.flight = fr }
}

// WithTelemetry names this bridge's process (for flight events) and
// routes per-crossing "wire:<linkID>" spans of traced frames into sp.
func WithTelemetry(node string, sp *trace.Spans) BridgeOption {
	return func(b *Bridge) {
		if node != "" {
			b.node = node
		}
		b.spans = sp
	}
}

// Listen opens the bridge socket. addr is a UDP listen address such
// as "127.0.0.1:0"; the chosen port is available from Addr.
func Listen(addr string, opts ...BridgeOption) (*Bridge, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("udpnet: listen %q: %w", addr, err)
	}
	b := &Bridge{
		conn:    conn,
		node:    "udpnet",
		tunnels: make(map[uint16]*Tunnel),
		closed:  make(chan struct{}),
	}
	for _, o := range opts {
		o(b)
	}
	b.wg.Add(1)
	go b.readLoop()
	return b, nil
}

// Addr returns the socket's bound address.
func (b *Bridge) Addr() *net.UDPAddr { return b.conn.LocalAddr().(*net.UDPAddr) }

// DecodeErrors counts datagrams discarded before demux: short, wrong
// magic, wrong version, or naming a link no tunnel terminates.
func (b *Bridge) DecodeErrors() uint64 { return b.decodeErrors.Load() }

// Close tears the bridge down: the socket closes, the read loop and
// every tunnel's writer exit, and attached gateways stop forwarding.
// Safe to call more than once.
func (b *Bridge) Close() error {
	b.closeOnce.Do(func() {
		close(b.closed)
		b.conn.Close()
	})
	b.wg.Wait()
	return nil
}

// readLoop is the demux pump: one goroutine per bridge reads
// datagrams and hands payloads to the owning tunnel. The buffer is
// reused across reads — Tunnel.ingress must copy before returning,
// which Host.SendRaw's pooled copy already does.
func (b *Bridge) readLoop() {
	defer b.wg.Done()
	buf := make([]byte, MaxDatagram)
	for {
		n, _, err := b.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-b.closed:
				return
			default:
			}
			// Transient socket errors (e.g. ICMP port unreachable
			// surfacing on connected reads) must not kill the pump.
			continue
		}
		dg := buf[:n]
		if n < HeaderLen || [4]byte(dg[0:4]) != magic || dg[4] != Version {
			b.decodeErrors.Add(1)
			b.flight.Record(ledger.Event{
				At: time.Now().UnixNano(), Node: b.node,
				Kind: ledger.KindDecodeError, Reason: fmt.Sprintf("bad frame header (%d bytes)", n),
			})
			continue
		}
		linkID := binary.BigEndian.Uint16(dg[6:8])
		b.mu.RLock()
		t := b.tunnels[linkID]
		b.mu.RUnlock()
		if t == nil {
			b.decodeErrors.Add(1)
			b.flight.Record(ledger.Event{
				At: time.Now().UnixNano(), Node: b.node,
				Kind: ledger.KindUnknownLink, Reason: fmt.Sprintf("link %d not attached", linkID),
			})
			continue
		}
		t.ingress(dg[5], dg[HeaderLen:])
	}
}

// tunnelConfig collects Attach options.
type tunnelConfig struct {
	depth    int
	lossSeed int64
	remote   *net.UDPAddr
}

// TunnelOption configures one Attach call.
type TunnelOption func(*tunnelConfig)

// WithDepth sets the tunnel's egress queue depth in frames.
// Non-positive values are ignored.
func WithDepth(n int) TunnelOption {
	return func(c *tunnelConfig) {
		if n > 0 {
			c.depth = n
		}
	}
}

// WithLossSeed seeds the tunnel's fault lottery, making injected loss
// reproducible run to run.
func WithLossSeed(seed int64) TunnelOption {
	return func(c *tunnelConfig) { c.lossSeed = seed }
}

// WithRemote sets the peer address at attach time; otherwise set it
// later with SetRemote once directory registration has resolved it.
func WithRemote(addr *net.UDPAddr) TunnelOption {
	return func(c *tunnelConfig) { c.remote = addr }
}

// Tunnel carries one logical link over the bridge's socket. Its fault
// handles mirror livenet.Link: SetDown cuts both directions, a loss
// ratio discards each frame independently (seeded, so reproducible),
// and Dropped attributes every discard for conservation checks.
type Tunnel struct {
	bridge *Bridge
	linkID uint16
	gw     *livenet.Host
	gwPort uint8
	inner  *livenet.Link // in-process link to the bridged router port

	wireStage string // span stage name, "wire:<linkID>"

	remote atomic.Pointer[net.UDPAddr]

	down       atomic.Bool   // explicit SetDown state
	peerLost   atomic.Bool   // set by consecutive-write-failure detection
	consecErrs atomic.Uint32 // socket write failures since the last success
	lossBits   atomic.Uint64 // math.Float64bits of the loss probability
	rngMu      sync.Mutex
	rng        *rand.Rand

	out chan []byte // framed datagrams awaiting the writer

	encapsulated atomic.Uint64
	decapsulated atomic.Uint64
	decodeErrors atomic.Uint64
	sendErrors   atomic.Uint64
	dropped      atomic.Uint64
	tracedSent   atomic.Uint64
	tracedRecv   atomic.Uint64
}

// Attach bridges port `port` of node `at` (a livenet Router or Host)
// onto the UDP socket as logical link linkID. It creates the gateway
// host and the in-process link to it; the returned Tunnel is live
// immediately, though frames sent before a remote address is known
// count as send errors. linkID must be unique on this bridge.
func (b *Bridge) Attach(netw *livenet.Network, at livenet.Attachable, port uint8, linkID uint16, opts ...TunnelOption) (*Tunnel, error) {
	cfg := tunnelConfig{depth: DefaultTunnelDepth, lossSeed: int64(linkID)}
	for _, o := range opts {
		o(&cfg)
	}
	t := &Tunnel{
		bridge:    b,
		linkID:    linkID,
		gwPort:    1,
		wireStage: fmt.Sprintf("wire:%d", linkID),
		rng:       rand.New(rand.NewSource(cfg.lossSeed)),
		out:       make(chan []byte, cfg.depth),
	}
	if cfg.remote != nil {
		t.remote.Store(cfg.remote)
	}
	b.mu.Lock()
	_, dup := b.tunnels[linkID]
	b.mu.Unlock()
	if dup {
		return nil, fmt.Errorf("udpnet: link %d already attached", linkID)
	}

	// Wire the gateway completely before publishing the tunnel: the
	// moment it is in b.tunnels, the read loop may hand it a datagram.
	t.gw = netw.NewHost(fmt.Sprintf("udpgw-%d", linkID))
	t.inner = netw.Connect(at, port, t.gw, t.gwPort)
	t.gw.SetRawTap(t.egress)

	b.mu.Lock()
	if _, dup := b.tunnels[linkID]; dup {
		// Lost a concurrent attach race for the same ID (caller bug; the
		// gateway host above is orphaned but harmless).
		b.mu.Unlock()
		return nil, fmt.Errorf("udpnet: link %d already attached", linkID)
	}
	b.tunnels[linkID] = t
	b.mu.Unlock()

	b.wg.Add(1)
	go t.writeLoop()
	return t, nil
}

// SetRemote points the tunnel at its peer's socket address.
func (t *Tunnel) SetRemote(addr *net.UDPAddr) { t.remote.Store(addr) }

// Remote returns the current peer address, nil before discovery.
func (t *Tunnel) Remote() *net.UDPAddr { return t.remote.Load() }

// LinkID returns the tunnel's logical link identifier.
func (t *Tunnel) LinkID() uint16 { return t.linkID }

// Gateway returns the livenet host terminating the tunnel, useful for
// inspection in tests.
func (t *Tunnel) Gateway() *livenet.Host { return t.gw }

// SetDown fails (true) or restores (false) both directions. The state
// propagates to the inner in-process link, so the bridged router's
// port-up view — and with it DAG failover — tracks the tunnel.
// Restoring does not override an active peer-loss declaration.
func (t *Tunnel) SetDown(down bool) {
	t.down.Store(down)
	t.syncInner()
}

// IsDown reports whether the tunnel is failed, either explicitly or by
// peer-loss detection.
func (t *Tunnel) IsDown() bool { return t.down.Load() || t.peerLost.Load() }

// PeerLost reports whether consecutive socket write failures have
// declared the peer unreachable.
func (t *Tunnel) PeerLost() bool { return t.peerLost.Load() }

// InnerLink returns the in-process link between the bridged port and
// the gateway host — the handle whose down state the router's failover
// logic consults.
func (t *Tunnel) InnerLink() *livenet.Link { return t.inner }

// syncInner mirrors the tunnel's effective health onto the inner link.
func (t *Tunnel) syncInner() {
	if t.inner != nil {
		t.inner.SetDown(t.down.Load() || t.peerLost.Load())
	}
}

// noteSendError advances the peer-loss detector after one socket write
// failure; at PeerLossThreshold consecutive failures the peer is
// declared lost, the inner link marked down, and the transition
// flight-recorded.
func (t *Tunnel) noteSendError() {
	if t.consecErrs.Add(1) < PeerLossThreshold {
		return
	}
	if t.peerLost.CompareAndSwap(false, true) {
		t.syncInner()
		t.bridge.flight.Record(ledger.Event{
			At: time.Now().UnixNano(), Node: t.bridge.node,
			Kind: ledger.KindLinkFlap, Reason: fmt.Sprintf("link %d: peer lost after %d consecutive send errors", t.linkID, PeerLossThreshold),
		})
	}
}

// noteSendOK resets the detector after a successful write; a peer
// previously declared lost is restored (unless explicitly down).
func (t *Tunnel) noteSendOK() {
	t.consecErrs.Store(0)
	if t.peerLost.CompareAndSwap(true, false) {
		t.syncInner()
		t.bridge.flight.Record(ledger.Event{
			At: time.Now().UnixNano(), Node: t.bridge.node,
			Kind: ledger.KindLinkFlap, Reason: fmt.Sprintf("link %d: peer recovered", t.linkID),
		})
	}
}

// SetLossRatio makes each egress frame be discarded with probability
// p (0 disables). The lottery is drawn from the tunnel's seeded
// source, so a given seed and traffic sequence loses the same frames
// every run.
func (t *Tunnel) SetLossRatio(p float64) { t.lossBits.Store(math.Float64bits(p)) }

// Dropped returns the number of frames discarded by fault injection
// and egress queue overflow. Because a down tunnel marks its inner
// in-process link down — so frames die at the link pump before ever
// reaching the tunnel — the inner link's discards are included, keeping
// the attribution complete for conservation checks.
func (t *Tunnel) Dropped() uint64 {
	n := t.dropped.Load()
	if t.inner != nil {
		n += t.inner.Dropped()
	}
	return n
}

// Stats returns a snapshot of the tunnel's counters. Dropped includes
// the inner link's discards, as Dropped() does.
func (t *Tunnel) Stats() Stats {
	return Stats{
		Encapsulated: t.encapsulated.Load(),
		Decapsulated: t.decapsulated.Load(),
		DecodeErrors: t.decodeErrors.Load(),
		SendErrors:   t.sendErrors.Load(),
		Dropped:      t.Dropped(),
		TracedSent:   t.tracedSent.Load(),
		TracedRecv:   t.tracedRecv.Load(),
	}
}

// drops draws the fault lottery for one frame.
func (t *Tunnel) drops() bool {
	if t.down.Load() {
		t.dropped.Add(1)
		return true
	}
	if p := math.Float64frombits(t.lossBits.Load()); p > 0 {
		t.rngMu.Lock()
		lost := t.rng.Float64() < p
		t.rngMu.Unlock()
		if lost {
			t.dropped.Add(1)
			return true
		}
	}
	return false
}

// egress is the gateway host's raw tap: every frame the router
// transmits onto the bridged port lands here as encoded VIPER bytes
// valid only for the duration of the call. The frame is framed into a
// fresh datagram and queued for the writer; a full queue drops, as an
// overrun link queue would.
//
// A frame whose in-process record carried a trace context crosses as
// TypeTraced with one less hop budget and the send stamp taken here —
// so the receiver's "wire:<linkID>" span covers egress-queue dwell as
// well as socket time, which is exactly the dwell a congested tunnel
// needs attributed. The local record has already been closed by the
// host's tap delivery; losing the datagram afterwards loses only the
// wire copy of the context, never an open record.
func (t *Tunnel) egress(pkt []byte, ctx trace.Context) {
	var dg []byte
	if ctx.CanHop() {
		dg = make([]byte, HeaderLen+tracedPrefixLen+len(pkt))
		dg[5] = TypeTraced
		ctx.Next().Encode(dg[HeaderLen:])
		binary.BigEndian.PutUint64(dg[HeaderLen+trace.ContextWireLen:], uint64(time.Now().UnixNano()))
		copy(dg[HeaderLen+tracedPrefixLen:], pkt)
	} else {
		dg = make([]byte, HeaderLen+len(pkt))
		dg[5] = TypeData
		copy(dg[HeaderLen:], pkt)
	}
	copy(dg[0:4], magic[:])
	dg[4] = Version
	binary.BigEndian.PutUint16(dg[6:8], t.linkID)
	select {
	case t.out <- dg:
	default:
		t.dropped.Add(1)
	}
}

// writeLoop drains the egress queue onto the socket. Fault lottery
// and remote resolution happen here, not in egress, so a flapping
// tunnel drops queued frames too — matching a cut cable, which loses
// what is in flight.
func (t *Tunnel) writeLoop() {
	defer t.bridge.wg.Done()
	for {
		select {
		case dg := <-t.out:
			if t.drops() {
				continue
			}
			remote := t.remote.Load()
			if remote == nil {
				t.sendErrors.Add(1)
				t.bridge.flight.Record(ledger.Event{
					At: time.Now().UnixNano(), Node: t.bridge.node,
					Kind: ledger.KindSendError, Reason: fmt.Sprintf("link %d: no remote address", t.linkID),
				})
				continue
			}
			if _, err := t.bridge.conn.WriteToUDP(dg, remote); err != nil {
				t.sendErrors.Add(1)
				t.noteSendError()
				t.bridge.flight.Record(ledger.Event{
					At: time.Now().UnixNano(), Node: t.bridge.node,
					Kind: ledger.KindSendError, Reason: fmt.Sprintf("link %d: %v", t.linkID, err),
				})
				continue
			}
			t.noteSendOK()
			t.encapsulated.Add(1)
			if dg[5] == TypeTraced {
				t.tracedSent.Add(1)
			}
		case <-t.bridge.closed:
			return
		}
	}
}

// ingress delivers one unframed payload into the livenet substrate.
// Runs on the bridge's read loop; payload aliases the read buffer and
// is copied by SendRaw before this returns. TypeTraced payloads shed
// their trace prefix first: the crossing is recorded as a
// "wire:<linkID>" span and the context rides into livenet so the
// network's tracer (if it resumes) follows the packet onward.
func (t *Tunnel) ingress(typ byte, payload []byte) {
	var ctx trace.Context
	var sent int64
	switch typ {
	case TypeData:
	case TypeTraced:
		var ok bool
		if ctx, ok = trace.DecodeContext(payload); !ok || len(payload) < tracedPrefixLen {
			t.decodeErrors.Add(1)
			t.bridge.flight.Record(ledger.Event{
				At: time.Now().UnixNano(), Node: t.bridge.node,
				Kind: ledger.KindDecodeError, Reason: fmt.Sprintf("link %d: short trace prefix (%d bytes)", t.linkID, len(payload)),
			})
			return
		}
		sent = int64(binary.BigEndian.Uint64(payload[trace.ContextWireLen:tracedPrefixLen]))
		payload = payload[tracedPrefixLen:]
	default:
		t.decodeErrors.Add(1)
		t.bridge.flight.Record(ledger.Event{
			At: time.Now().UnixNano(), Node: t.bridge.node,
			Kind: ledger.KindDecodeError, Reason: fmt.Sprintf("link %d: unknown frame type 0x%02x", t.linkID, typ),
		})
		return
	}
	if len(payload) == 0 {
		t.decodeErrors.Add(1)
		t.bridge.flight.Record(ledger.Event{
			At: time.Now().UnixNano(), Node: t.bridge.node,
			Kind: ledger.KindDecodeError, Reason: fmt.Sprintf("link %d: empty payload", t.linkID),
		})
		return
	}
	if t.down.Load() {
		t.dropped.Add(1)
		return
	}
	arrived := int64(0)
	if ctx.Valid() {
		arrived = time.Now().UnixNano()
	}
	if err := t.gw.SendRawTraced(t.gwPort, payload, ctx); err != nil {
		t.sendErrors.Add(1)
		return
	}
	t.decapsulated.Add(1)
	if ctx.Valid() {
		// Counted and recorded only for frames that actually entered the
		// substrate, so wire-span counts reconcile exactly with
		// TracedRecv across the cluster.
		t.tracedRecv.Add(1)
		t.bridge.spans.Record(trace.Span{
			Trace: ctx.ID, Stage: t.wireStage, Node: t.bridge.node,
			Start: sent, End: arrived,
		})
	}
}
