package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func TestSizeDistMoments(t *testing.T) {
	d := SizeDist{Min: 64, Max: 1500}
	r := rand.New(rand.NewSource(1))
	var sum float64
	nMin, nMax := 0, 0
	const n = 200000
	for i := 0; i < n; i++ {
		s := d.Sample(r)
		if s < d.Min || s > d.Max {
			t.Fatalf("sample %d out of range", s)
		}
		if s == d.Min {
			nMin++
		}
		if s == d.Max {
			nMax++
		}
		sum += float64(s)
	}
	if got := float64(nMin) / n; math.Abs(got-0.5) > 0.01 {
		t.Errorf("P(min) = %v, want ~0.5", got)
	}
	if got := float64(nMax) / n; math.Abs(got-0.25) > 0.01 {
		t.Errorf("P(max) = %v, want ~0.25", got)
	}
	mean := sum / n
	if math.Abs(mean-d.Mean())/d.Mean() > 0.01 {
		t.Errorf("empirical mean %v vs analytic %v", mean, d.Mean())
	}
}

func TestSizeDistPaperClaim(t *testing.T) {
	// "the average packet size is roughly 3/8 of the maximum packet
	// size" (§6.2) — with minimum small relative to maximum.
	d := SizeDist{Min: 0, Max: 2048}
	want := 3.0 / 8.0 * 2048
	if math.Abs(d.Mean()-want) > 1 {
		t.Fatalf("Mean = %v, want %v", d.Mean(), want)
	}
	// The paper's own example: 2 KB max gives ~633 bytes with a small
	// nonzero min; verify we land in that neighborhood with min=64.
	d2 := SizeDist{Min: 64, Max: 2048}
	if d2.Mean() < 600 || d2.Mean() > 850 {
		t.Fatalf("Mean = %v, expected in the paper's ballpark of ~633-800", d2.Mean())
	}
}

func TestSizeDistDegenerate(t *testing.T) {
	d := SizeDist{Min: 100, Max: 100}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		if d.Sample(r) != 100 {
			t.Fatal("degenerate distribution must return the single size")
		}
	}
}

func TestPaperLocalityMean(t *testing.T) {
	d := PaperLocality()
	if math.Abs(d.Mean()-0.2) > 1e-9 {
		t.Fatalf("PaperLocality mean = %v, want the paper's 0.2", d.Mean())
	}
	var sum float64
	for _, w := range d.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestHopDistSampling(t *testing.T) {
	d := PaperLocality()
	r := rand.New(rand.NewSource(3))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(d.Sample(r))
	}
	if got := sum / n; math.Abs(got-0.2) > 0.01 {
		t.Fatalf("empirical hop mean = %v, want ~0.2", got)
	}
}

func TestPoissonMeanRate(t *testing.T) {
	p := Poisson{RatePerSec: 1000}
	r := rand.New(rand.NewSource(4))
	var total sim.Time
	const n = 100000
	for i := 0; i < n; i++ {
		total += p.Next(r)
	}
	gotRate := float64(n) / total.Seconds()
	if math.Abs(gotRate-1000)/1000 > 0.02 {
		t.Fatalf("rate = %v, want ~1000", gotRate)
	}
}

func TestCBR(t *testing.T) {
	c := CBR{Interval: 5 * sim.Millisecond}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		if c.Next(r) != 5*sim.Millisecond {
			t.Fatal("CBR must be constant")
		}
	}
}

func TestOnOffLongRunRate(t *testing.T) {
	o := &OnOff{PeakRatePerSec: 10000, MeanOn: 10 * sim.Millisecond, MeanOff: 90 * sim.Millisecond}
	if math.Abs(o.DutyCycle()-0.1) > 1e-9 {
		t.Fatalf("DutyCycle = %v", o.DutyCycle())
	}
	if math.Abs(o.MeanRate()-1000) > 1e-6 {
		t.Fatalf("MeanRate = %v", o.MeanRate())
	}
	r := rand.New(rand.NewSource(6))
	var total sim.Time
	const n = 100000
	for i := 0; i < n; i++ {
		g := o.Next(r)
		if g < 0 {
			t.Fatal("negative gap")
		}
		total += g
	}
	gotRate := float64(n) / total.Seconds()
	// Long-run rate should approach peak * duty cycle.
	if math.Abs(gotRate-1000)/1000 > 0.1 {
		t.Fatalf("long-run rate = %v, want ~1000", gotRate)
	}
}

func TestOnOffBurstiness(t *testing.T) {
	// The gaps must be bimodal: mostly short (intra-burst), occasionally
	// long (inter-burst), unlike Poisson at the same mean rate.
	o := &OnOff{PeakRatePerSec: 10000, MeanOn: 10 * sim.Millisecond, MeanOff: 90 * sim.Millisecond}
	r := rand.New(rand.NewSource(7))
	short, long := 0, 0
	for i := 0; i < 50000; i++ {
		g := o.Next(r)
		if g < sim.Millisecond {
			short++
		}
		if g > 10*sim.Millisecond {
			long++
		}
	}
	if short < 40000 {
		t.Fatalf("short gaps = %d; burst structure missing", short)
	}
	if long < 100 {
		t.Fatalf("long gaps = %d; off periods missing", long)
	}
}
