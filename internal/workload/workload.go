// Package workload generates the traffic models the paper's §6.2 analysis
// is built on: the measured packet-size distribution ("half the packets
// are close to minimum size ... one quarter are maximum size and the rest
// are more or less uniformly distributed between these two extremes"),
// the hop-count locality model ("locality of communication causes the
// expected number of hops per packet for many applications significantly
// less than one"), and arrival processes from Poisson to the bursty
// on/off traffic that motivates packet switching over circuits.
package workload

import (
	"math/rand"

	"repro/internal/sim"
)

// SizeDist is the paper's three-part packet-size distribution.
type SizeDist struct {
	Min, Max int
}

// Sample draws a packet size: P(min)=1/2, P(max)=1/4, else uniform in
// (min, max).
func (d SizeDist) Sample(r *rand.Rand) int {
	switch v := r.Float64(); {
	case v < 0.5:
		return d.Min
	case v < 0.75:
		return d.Max
	default:
		if d.Max <= d.Min {
			return d.Min
		}
		return d.Min + r.Intn(d.Max-d.Min)
	}
}

// Mean returns the analytic mean: 5/8·min + 3/8·max. With a small minimum
// this is the paper's "average packet size is roughly 3/8 of the maximum"
// (§6.2).
func (d SizeDist) Mean() float64 {
	return 0.5*float64(d.Min) + 0.25*float64(d.Max) + 0.25*(float64(d.Min)+float64(d.Max))/2
}

// HopDist is a discrete hop-count distribution.
type HopDist struct {
	// Hops[i] is a hop count and Weights[i] its probability mass;
	// weights must sum to ~1.
	Hops    []int
	Weights []float64
}

// PaperLocality approximates §6.2's locality argument: most traffic is
// local (0 routers traversed), with a thin tail to telephone-like 5–6 hop
// global paths; the mean is the paper's 0.2 hops.
func PaperLocality() HopDist {
	return HopDist{
		Hops:    []int{0, 1, 2, 3, 5},
		Weights: []float64{0.88, 0.08, 0.02, 0.01, 0.01},
	}
}

// Sample draws a hop count.
func (d HopDist) Sample(r *rand.Rand) int {
	v := r.Float64()
	acc := 0.0
	for i, w := range d.Weights {
		acc += w
		if v < acc {
			return d.Hops[i]
		}
	}
	return d.Hops[len(d.Hops)-1]
}

// Mean returns the analytic expected hop count.
func (d HopDist) Mean() float64 {
	m := 0.0
	for i, w := range d.Weights {
		m += w * float64(d.Hops[i])
	}
	return m
}

// Arrivals generates interarrival gaps.
type Arrivals interface {
	// Next returns the gap until the next arrival.
	Next(r *rand.Rand) sim.Time
}

// Poisson arrivals at the given mean rate (packets/second).
type Poisson struct {
	RatePerSec float64
}

// Next draws an exponential interarrival time.
func (p Poisson) Next(r *rand.Rand) sim.Time {
	gap := r.ExpFloat64() / p.RatePerSec
	return sim.Time(gap * float64(sim.Second))
}

// CBR is a constant bit rate / fixed-interval arrival process.
type CBR struct {
	Interval sim.Time
}

// Next returns the fixed interval.
func (c CBR) Next(r *rand.Rand) sim.Time { return c.Interval }

// OnOff is a two-state bursty source: exponentially distributed ON
// periods during which packets arrive at PeakRate, and exponential OFF
// periods with no traffic. This is the "highly bursty traffic
// characteristic of most computer communication" that makes circuits a
// poor fit (§1): an 8 Mb stream on a gigabit channel uses under 1% of the
// bandwidth in bursts.
type OnOff struct {
	PeakRatePerSec  float64
	MeanOn, MeanOff sim.Time

	init   bool
	inOn   bool
	onEnds sim.Time
	t      sim.Time // source-local time of the previous emission
}

// Next returns the gap to the next packet, advancing the internal on/off
// state machine; gaps spanning OFF periods include the idle time.
func (o *OnOff) Next(r *rand.Rand) sim.Time {
	prev := o.t
	if !o.init {
		o.init = true
		o.inOn = true
		o.onEnds = sim.Time(r.ExpFloat64() * float64(o.MeanOn))
	}
	for {
		if !o.inOn {
			off := sim.Time(r.ExpFloat64() * float64(o.MeanOff))
			o.t += off
			o.inOn = true
			o.onEnds = o.t + sim.Time(r.ExpFloat64()*float64(o.MeanOn))
		}
		gap := sim.Time(r.ExpFloat64() / o.PeakRatePerSec * float64(sim.Second))
		if o.t+gap <= o.onEnds {
			o.t += gap
			return o.t - prev
		}
		o.t = o.onEnds
		o.inOn = false
	}
}

// DutyCycle reports the long-run fraction of time the source is ON.
func (o *OnOff) DutyCycle() float64 {
	return float64(o.MeanOn) / float64(o.MeanOn+o.MeanOff)
}

// MeanRate reports the long-run average packet rate.
func (o *OnOff) MeanRate() float64 { return o.PeakRatePerSec * o.DutyCycle() }
