package trace

import "testing"

func TestContextWireRoundTrip(t *testing.T) {
	in := Context{ID: 3<<48 | 42, Origin: 1_700_000_000_123_456_789, Budget: 5}
	var buf [ContextWireLen]byte
	if n := in.Encode(buf[:]); n != ContextWireLen {
		t.Fatalf("Encode wrote %d bytes, want %d", n, ContextWireLen)
	}
	out, ok := DecodeContext(buf[:])
	if !ok || out != in {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", out, ok, in)
	}
	if _, ok := DecodeContext(buf[:ContextWireLen-1]); ok {
		t.Fatal("DecodeContext accepted a short buffer")
	}
}

func TestContextHopBudget(t *testing.T) {
	c := Context{ID: 1, Origin: 1, Budget: 2}
	if !c.Valid() || !c.CanHop() {
		t.Fatalf("fresh context not hoppable: %+v", c)
	}
	c = c.Next()
	c = c.Next()
	if c.Budget != 0 || c.CanHop() {
		t.Fatalf("budget not exhausted after 2 crossings: %+v", c)
	}
	// Exhausted contexts stay valid (the trace still exists; it just
	// can't cross again), and Next saturates rather than wrapping.
	if !c.Valid() {
		t.Fatal("exhausted context lost its identity")
	}
	if c = c.Next(); c.Budget != 0 {
		t.Fatalf("budget wrapped: %+v", c)
	}
	if (Context{}).Valid() || (Context{Budget: 8}).CanHop() {
		t.Fatal("zero-ID context treated as a live trace")
	}
}

// TestClusterTracerAccounting pins the cross-process identity rules:
// every originated ID carries the tracer's idBase, resumption keeps
// the foreign ID, the origin/forward stage split follows the identity
// bits, and finished == begun + resumed at quiesce.
func TestClusterTracerAccounting(t *testing.T) {
	spans := NewSpans(8)
	c := NewClusterTracer("n2", 2<<48, 1, spans, nil)

	local := c.Begin([]byte("p"))
	if local == nil || local.Ctx.ID&idBaseMask != 2<<48 {
		t.Fatalf("Begin ID %x lacks idBase", local.Ctx.ID)
	}
	if local.Ctx.Budget != DefaultHopBudget || !local.Ctx.CanHop() {
		t.Fatalf("fresh trace context %+v", local.Ctx)
	}
	local.Add(HopEvent{Node: "a", At: 10})
	local.Add(HopEvent{Node: "b", At: 30})
	c.Finish(local)

	foreign := c.Resume(Context{ID: 1<<48 | 7, Origin: 5, Budget: 3})
	if foreign == nil || foreign.Ctx.ID != 1<<48|7 {
		t.Fatalf("Resume changed the trace ID: %+v", foreign)
	}
	foreign.Add(HopEvent{Node: "a", At: 100})
	foreign.Add(HopEvent{Node: "b", At: 140})
	c.Finish(foreign)

	begun, resumed, finished := c.Counts()
	if begun != 1 || resumed != 1 || finished != 2 {
		t.Fatalf("counts begun=%d resumed=%d finished=%d", begun, resumed, finished)
	}
	got := map[string]int64{}
	for _, st := range spans.Snapshot().Stages {
		got[st.Stage] = st.SumNs
	}
	if got["origin"] != 20 || got["forward"] != 40 {
		t.Fatalf("stage durations %v, want origin=20 forward=40", got)
	}
}

// TestClusterTracerSampling: with every=N only one packet in N begins
// a trace, but resumption is unconditional — the sampling decision
// belongs to the originator alone.
func TestClusterTracerSampling(t *testing.T) {
	c := NewClusterTracer("n", 1<<48, 4, nil, nil)
	var traced int
	for i := 0; i < 100; i++ {
		if pt := c.Begin(nil); pt != nil {
			traced++
			c.Finish(pt)
		}
	}
	if traced != 25 {
		t.Fatalf("every=4 traced %d of 100", traced)
	}
	if pt := c.Resume(Context{ID: 9 << 48, Budget: 1}); pt == nil {
		t.Fatal("Resume sampled out a foreign trace")
	} else {
		c.Finish(pt)
	}
	if b, r, f := c.Counts(); f != b+r {
		t.Fatalf("leak: begun=%d resumed=%d finished=%d", b, r, f)
	}
}

// TestMergeStagesExact: merging per-node snapshots gives the same
// counts and sums as recording everything on one node — the histogram
// buckets travel with the snapshot, so aggregation loses nothing.
func TestMergeStagesExact(t *testing.T) {
	a, b, whole := NewSpans(0), NewSpans(0), NewSpans(0)
	for i := int64(1); i <= 64; i++ {
		sp := Span{Trace: uint64(i), Stage: "wire:1", Start: 0, End: i * 1000}
		whole.Record(sp)
		if i%2 == 0 {
			a.Record(sp)
		} else {
			b.Record(sp)
		}
	}
	merged := MergeStages(a.Snapshot().Stages, b.Snapshot().Stages)
	want := whole.Snapshot().Stages
	if len(merged) != 1 || len(want) != 1 {
		t.Fatalf("stage counts: merged=%d want=%d", len(merged), len(want))
	}
	m, w := merged[0], want[0]
	if m.Count != w.Count || m.SumNs != w.SumNs || m.P50Ns != w.P50Ns || m.P99Ns != w.P99Ns {
		t.Fatalf("merged %+v differs from whole %+v", m, w)
	}
}
