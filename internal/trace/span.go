package trace

import (
	"sort"
	"sync"

	"repro/internal/stats"
)

// Span is one named stage of a packet's or stream group's journey
// through the cluster: a trace ID, a stage name, and a start/end
// timestamp pair. Stage names are a small stable vocabulary —
// "origin" and "forward" for a packet's transit of one process,
// "wire:<linkID>" for a tunnel crossing, and the gateway's
// "stream-ingress" / "stream-transit" / "stream-egress" /
// "stream-return" / "stream-client-write" family — so the directory
// can merge per-stage latency across nodes without coordination.
//
// Timestamp bases vary by stage: wire and stream stages use Unix
// wall-clock nanoseconds (comparable across same-machine processes),
// origin/forward spans use the process-monotonic clock.Source base.
// Only the duration End-Start is aggregated; raw stamps are kept for
// the recent-span ring so individual traces can be followed by ID.
type Span struct {
	Trace uint64 `json:"trace"`
	Stage string `json:"stage"`
	Node  string `json:"node,omitempty"`
	Start int64  `json:"start_ns"`
	End   int64  `json:"end_ns"`
}

// DurationNs returns the span's duration, clamped at zero (cross-
// process stamps can be slightly skewed).
func (s Span) DurationNs() int64 {
	if d := s.End - s.Start; d > 0 {
		return d
	}
	return 0
}

// Spans aggregates spans by stage name: a count, a duration sum, and a
// log2 latency histogram per stage, plus a small ring of recent raw
// spans for trace-following. Safe for concurrent use; nil-safe Record
// so call sites need no guard when telemetry is off.
type Spans struct {
	mu     sync.Mutex
	stages map[string]*stats.Log2Histogram
	recent []Span
	next   int
}

// defaultRecentSpans bounds the raw-span ring when NewSpans is given a
// non-positive capacity.
const defaultRecentSpans = 256

// NewSpans creates an empty aggregator keeping up to recentCap raw
// spans (<= 0 selects a default).
func NewSpans(recentCap int) *Spans {
	if recentCap <= 0 {
		recentCap = defaultRecentSpans
	}
	return &Spans{
		stages: make(map[string]*stats.Log2Histogram),
		recent: make([]Span, 0, recentCap),
	}
}

// Record folds one span into its stage's aggregate. No-op on a nil
// receiver.
func (s *Spans) Record(sp Span) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.stages[sp.Stage]
	if h == nil {
		h = &stats.Log2Histogram{}
		s.stages[sp.Stage] = h
	}
	h.Add(sp.DurationNs())
	if len(s.recent) < cap(s.recent) {
		s.recent = append(s.recent, sp)
	} else if cap(s.recent) > 0 {
		s.recent[s.next] = sp
		s.next = (s.next + 1) % cap(s.recent)
	}
}

// StageStats is the exported aggregate for one stage. Buckets carry
// the full histogram (not just percentiles) so a central aggregator
// can merge stages from many nodes exactly, via MergeStages.
type StageStats struct {
	Stage   string          `json:"stage"`
	Count   int64           `json:"count"`
	SumNs   int64           `json:"sum_ns"`
	MeanNs  float64         `json:"mean_ns"`
	P50Ns   int64           `json:"p50_ns"`
	P99Ns   int64           `json:"p99_ns"`
	Buckets []LatencyBucket `json:"buckets,omitempty"`
}

// SpansSnapshot is a point-in-time JSON-marshalable view of a Spans.
type SpansSnapshot struct {
	Stages []StageStats `json:"stages,omitempty"`
	Recent []Span       `json:"recent,omitempty"`
}

// Snapshot returns the current aggregates, stages sorted by name.
// Safe on a nil receiver (empty snapshot).
func (s *Spans) Snapshot() SpansSnapshot {
	if s == nil {
		return SpansSnapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out SpansSnapshot
	names := make([]string, 0, len(s.stages))
	for k := range s.stages {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.stages[k]
		st := StageStats{
			Stage:  k,
			Count:  h.Total(),
			SumNs:  h.Sum(),
			MeanNs: h.Mean(),
			P50Ns:  h.Percentile(50),
			P99Ns:  h.Percentile(99),
		}
		for _, b := range h.Buckets() {
			st.Buckets = append(st.Buckets, LatencyBucket{Lo: b.Lo, Hi: b.Hi, Count: b.Count})
		}
		out.Stages = append(out.Stages, st)
	}
	out.Recent = append(out.Recent, s.recent...)
	return out
}

// MergeStages combines per-stage aggregates from many nodes into one
// cluster-wide view: same-named stages have their histograms absorbed
// bucket-by-bucket, so merged counts are exact and merged percentiles
// are as good as any single node's. Results are sorted by stage name.
func MergeStages(groups ...[]StageStats) []StageStats {
	merged := make(map[string]*stats.Log2Histogram)
	for _, g := range groups {
		for _, st := range g {
			h := merged[st.Stage]
			if h == nil {
				h = &stats.Log2Histogram{}
				merged[st.Stage] = h
			}
			bs := make([]stats.Log2Bucket, 0, len(st.Buckets))
			for _, b := range st.Buckets {
				bs = append(bs, stats.Log2Bucket{Lo: b.Lo, Hi: b.Hi, Count: b.Count})
			}
			h.Absorb(bs, st.SumNs)
		}
	}
	names := make([]string, 0, len(merged))
	for k := range merged {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]StageStats, 0, len(names))
	for _, k := range names {
		h := merged[k]
		st := StageStats{
			Stage:  k,
			Count:  h.Total(),
			SumNs:  h.Sum(),
			MeanNs: h.Mean(),
			P50Ns:  h.Percentile(50),
			P99Ns:  h.Percentile(99),
		}
		for _, b := range h.Buckets() {
			st.Buckets = append(st.Buckets, LatencyBucket{Lo: b.Lo, Hi: b.Hi, Count: b.Count})
		}
		out = append(out, st)
	}
	return out
}
