package trace

import (
	"expvar"
	"fmt"
	"sort"
	"sync"

	"repro/internal/stats"
)

// Metrics is a Tracer that folds finished records into aggregate
// counters instead of retaining them: total forwarding counters,
// per-port counters keyed "node:port", a log-scale histogram of
// per-hop latencies, and cut-through/store-and-forward/preempt/block
// tallies. It backs the expvar/HTTP endpoint of sirpentd. Safe for
// concurrent use.
type Metrics struct {
	mu sync.Mutex

	packets uint64 // finished records
	hops    uint64 // hop events folded in

	totals stats.Counters // aggregate forward/local/drop counters

	cutThrough   uint64 // forwards that began before the tail arrived
	storeForward uint64 // forwards of a fully buffered frame
	preempts     uint64
	blocks       uint64
	lost         uint64

	perPort map[string]*stats.Counters // "node:port" -> counters
	hopLat  stats.Log2Histogram        // per-hop latency, ns
}

// NewMetrics creates an empty aggregator.
func NewMetrics() *Metrics {
	return &Metrics{perPort: make(map[string]*stats.Counters)}
}

// Begin implements Tracer.
func (m *Metrics) Begin(payload []byte) *PacketTrace {
	return &PacketTrace{Hops: make([]HopEvent, 0, 8)}
}

// Finish implements Tracer: fold the record's hops into the aggregates.
func (m *Metrics) Finish(pt *PacketTrace) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.packets++
	for i := range pt.Hops {
		ev := &pt.Hops[i]
		m.hops++
		switch ev.Action {
		case ActionForward:
			m.totals.Forwarded++
			m.port(ev.Node, ev.OutPort).Forwarded++
			if ev.CutThrough {
				m.cutThrough++
			} else {
				m.storeForward++
			}
			m.hopLat.Add(ev.LatencyNs)
		case ActionLocal:
			m.totals.Local++
			m.port(ev.Node, ev.InPort).Local++
			m.hopLat.Add(ev.LatencyNs)
		case ActionDrop:
			m.totals.Drop(ev.Reason)
			m.port(ev.Node, ev.InPort).Drop(ev.Reason)
		case ActionPreempt:
			m.preempts++
		case ActionBlock:
			m.blocks++
		case ActionLost:
			m.lost++
		}
	}
}

func (m *Metrics) port(node string, port uint8) *stats.Counters {
	key := fmt.Sprintf("%s:%d", node, port)
	c := m.perPort[key]
	if c == nil {
		c = &stats.Counters{}
		m.perPort[key] = c
	}
	return c
}

// PortMetrics is the exported per-port counter block of a Snapshot.
type PortMetrics struct {
	Port      string            `json:"port"` // "node:port"
	Forwarded uint64            `json:"forwarded"`
	Local     uint64            `json:"local"`
	Drops     map[string]uint64 `json:"drops,omitempty"` // by DropReason.String()
}

// LatencyBucket is one exported histogram bucket: Count hop latencies
// v in nanoseconds with Lo <= v < Hi.
type LatencyBucket struct {
	Lo    int64 `json:"lo_ns"`
	Hi    int64 `json:"hi_ns"`
	Count int64 `json:"count"`
}

// Snapshot is a point-in-time JSON-marshalable view of a Metrics.
// Every map key that names a drop bucket is a stats.DropReason.String()
// value — the stability test in internal/stats pins those names.
type Snapshot struct {
	Packets uint64 `json:"packets"`
	Hops    uint64 `json:"hops"`

	Forwarded uint64            `json:"forwarded"`
	Local     uint64            `json:"local"`
	Drops     map[string]uint64 `json:"drops,omitempty"`

	CutThrough   uint64 `json:"cut_through"`
	StoreForward uint64 `json:"store_forward"`
	Preempts     uint64 `json:"preempts"`
	Blocks       uint64 `json:"blocks"`
	Lost         uint64 `json:"lost"`

	HopLatencyMeanNs float64         `json:"hop_latency_mean_ns"`
	HopLatencyP50Ns  int64           `json:"hop_latency_p50_ns"`
	HopLatencyP99Ns  int64           `json:"hop_latency_p99_ns"`
	HopLatency       []LatencyBucket `json:"hop_latency,omitempty"`

	Ports []PortMetrics `json:"ports,omitempty"`
}

// Snapshot returns the current aggregates.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Packets:      m.packets,
		Hops:         m.hops,
		Forwarded:    m.totals.Forwarded,
		Local:        m.totals.Local,
		Drops:        dropMap(m.totals),
		CutThrough:   m.cutThrough,
		StoreForward: m.storeForward,
		Preempts:     m.preempts,
		Blocks:       m.blocks,
		Lost:         m.lost,

		HopLatencyMeanNs: m.hopLat.Mean(),
		HopLatencyP50Ns:  m.hopLat.Percentile(50),
		HopLatencyP99Ns:  m.hopLat.Percentile(99),
	}
	for _, b := range m.hopLat.Buckets() {
		s.HopLatency = append(s.HopLatency, LatencyBucket{Lo: b.Lo, Hi: b.Hi, Count: b.Count})
	}
	keys := make([]string, 0, len(m.perPort))
	for k := range m.perPort {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := m.perPort[k]
		s.Ports = append(s.Ports, PortMetrics{
			Port:      k,
			Forwarded: c.Forwarded,
			Local:     c.Local,
			Drops:     dropMap(*c),
		})
	}
	return s
}

// dropMap converts the drop bucket array to a name-keyed map, omitting
// empty buckets. Keys are DropReason.String() values.
func dropMap(c stats.Counters) map[string]uint64 {
	var out map[string]uint64
	for _, r := range stats.DropReasons() {
		if n := c.DropCount(r); n > 0 {
			if out == nil {
				out = make(map[string]uint64)
			}
			out[r.String()] = n
		}
	}
	return out
}

// Publish registers the live Snapshot under name in the process-wide
// expvar registry (served on /debug/vars by net/http). expvar panics
// on duplicate names, so call once per process per name.
func (m *Metrics) Publish(name string) {
	expvar.Publish(name, expvar.Func(func() any { return m.Snapshot() }))
}
