package trace

import (
	"sync/atomic"
	"time"
)

// ClusterTracer is the Tracer a distributed sirpentd peer installs: it
// both samples new traces at the origin (stamping each record with a
// cluster-unique Context so tunnels and gateways can carry it across
// process boundaries) and resumes traces that arrive from other
// processes. Finished records fold into two places: an optional
// embedded Metrics (hop-level aggregates, exactly as in a
// single-process run) and a Spans aggregator, as one span per record
// covering the packet's transit of this process — stage "origin" for
// records begun here, "forward" for resumed ones.
//
// The begun/resumed/finished counters give the span-leak invariant the
// cluster verifier checks at quiesce: every record opened in this
// process (either way) must have been finished — delivered, dropped,
// or handed off at a tunnel tap — so finished == begun + resumed.
type ClusterTracer struct {
	node    string
	idBase  uint64
	every   uint64
	spans   *Spans
	metrics *Metrics

	seq      atomic.Uint64
	begun    atomic.Uint64
	resumed  atomic.Uint64
	finished atomic.Uint64
}

// NewClusterTracer creates a tracer for one peer. idBase is OR-ed into
// every originated trace ID and must not collide across peers (the
// daemon uses (peerIndex+1)<<48); every samples one originated packet
// in N (<= 1 traces all); spans and metrics may each be nil.
func NewClusterTracer(node string, idBase uint64, every uint64, spans *Spans, metrics *Metrics) *ClusterTracer {
	if every < 1 {
		every = 1
	}
	return &ClusterTracer{node: node, idBase: idBase, every: every, spans: spans, metrics: metrics}
}

// Begin implements Tracer: sample and stamp a new cluster-wide trace.
func (c *ClusterTracer) Begin(payload []byte) *PacketTrace {
	n := c.seq.Add(1)
	if c.every > 1 && n%c.every != 0 {
		return nil
	}
	c.begun.Add(1)
	id := c.idBase | n
	return &PacketTrace{
		ID:   id,
		Ctx:  Context{ID: id, Origin: time.Now().UnixNano(), Budget: DefaultHopBudget},
		Hops: make([]HopEvent, 0, 8),
	}
}

// Resume implements Resumer: re-open a record for a context that
// crossed a process boundary.
func (c *ClusterTracer) Resume(ctx Context) *PacketTrace {
	c.resumed.Add(1)
	return &PacketTrace{ID: ctx.ID, Ctx: ctx, Hops: make([]HopEvent, 0, 8)}
}

// Finish implements Tracer: fold the record into the hop-level metrics
// and record this process's segment of the packet's journey as a span.
// Hop stamps share one process-local base, so the span duration
// (last hop At - first hop At) is exact even though the base is not
// comparable across processes.
func (c *ClusterTracer) Finish(pt *PacketTrace) {
	c.finished.Add(1)
	if c.metrics != nil {
		c.metrics.Finish(pt)
	}
	if c.spans != nil && len(pt.Hops) > 0 {
		stage := "forward"
		if pt.Ctx.ID&idBaseMask == c.idBase&idBaseMask {
			stage = "origin"
		}
		c.spans.Record(Span{
			Trace: pt.Ctx.ID,
			Stage: stage,
			Node:  c.node,
			Start: pt.Hops[0].At,
			End:   pt.Hops[len(pt.Hops)-1].At,
		})
	}
}

// idBaseMask selects the peer-identity bits of a trace ID (the daemon
// packs the peer index above bit 48).
const idBaseMask uint64 = 0xFFFF << 48

// Counts returns how many records this tracer originated, resumed,
// and finished. At quiesce finished == begun + resumed, or spans have
// leaked.
func (c *ClusterTracer) Counts() (begun, resumed, finished uint64) {
	return c.begun.Load(), c.resumed.Load(), c.finished.Load()
}

// Metrics returns the embedded hop-level aggregator (nil if none).
func (c *ClusterTracer) Metrics() *Metrics { return c.metrics }

// Spans returns the embedded span aggregator (nil if none).
func (c *ClusterTracer) Spans() *Spans { return c.spans }
