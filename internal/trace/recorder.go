package trace

import "sync"

// DefaultRecorderLimit bounds how many finished records a Recorder
// retains before discarding new ones (oldest are kept: the first
// packets of a run are usually the ones under investigation).
const DefaultRecorderLimit = 4096

// Recorder is a Tracer that retains whole per-packet records for
// offline inspection — the per-hop tables of `sirpent-bench -trace`
// and the failure evidence of the differential suite. Safe for
// concurrent use.
type Recorder struct {
	mu      sync.Mutex
	idFn    func([]byte) uint64
	limit   int
	done    []*PacketTrace
	dropped uint64
}

// NewRecorder creates a recorder. idFn, which may be nil, derives each
// packet's trace ID from its payload at Begin time (the conformance
// harness passes its flow-ID parser).
func NewRecorder(idFn func([]byte) uint64) *Recorder {
	return &Recorder{idFn: idFn, limit: DefaultRecorderLimit}
}

// SetLimit changes the retention bound; non-positive keeps everything.
func (r *Recorder) SetLimit(n int) {
	r.mu.Lock()
	r.limit = n
	r.mu.Unlock()
}

// Begin implements Tracer.
func (r *Recorder) Begin(payload []byte) *PacketTrace {
	pt := &PacketTrace{Hops: make([]HopEvent, 0, 8)}
	if r.idFn != nil {
		pt.ID = r.idFn(payload)
	}
	return pt
}

// Finish implements Tracer.
func (r *Recorder) Finish(pt *PacketTrace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.limit > 0 && len(r.done) >= r.limit {
		r.dropped++
		return
	}
	r.done = append(r.done, pt)
}

// Traces returns the finished records in completion order.
func (r *Recorder) Traces() []*PacketTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*PacketTrace(nil), r.done...)
}

// ByID returns the finished records with the given trace ID, in
// completion order (a request and its reply share a flow ID and appear
// as two records).
func (r *Recorder) ByID(id uint64) []*PacketTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*PacketTrace
	for _, pt := range r.done {
		if pt.ID == id {
			out = append(out, pt)
		}
	}
	return out
}

// Discarded reports how many finished records the retention bound
// rejected.
func (r *Recorder) Discarded() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
