package trace

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// Format renders the record as an aligned per-hop table:
//
//	hop  node  in  out  action   how    queue  t(ns)  dt(ns)
//
// The "how" column distinguishes cut-through from store-and-forward
// hops; "reason" appears inline in the action column for drops. Safe
// on a nil receiver.
func (p *PacketTrace) Format() string {
	if p == nil {
		return "(no trace)\n"
	}
	var sb strings.Builder
	if p.ID != 0 {
		fmt.Fprintf(&sb, "packet %d (%d hops)\n", p.ID, len(p.Hops))
	} else {
		fmt.Fprintf(&sb, "packet (%d hops)\n", len(p.Hops))
	}
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "hop\tnode\tin\tout\taction\thow\tqueue\tt(ns)\tdt(ns)")
	for i, ev := range p.Hops {
		action := ev.Action.String()
		if ev.Action == ActionDrop {
			action = "drop:" + ev.Reason.String()
		}
		how := "-"
		switch ev.Action {
		case ActionForward:
			how = "store-fwd"
			if ev.CutThrough {
				how = "cut-through"
			}
		case ActionBlock:
			how = "buffered"
		}
		out := "-"
		if ev.Action == ActionForward {
			out = fmt.Sprintf("%d", ev.OutPort)
		}
		fmt.Fprintf(w, "%d\t%s\t%d\t%s\t%s\t%s\t%d\t%d\t%d\n",
			i, ev.Node, ev.InPort, out, action, how, ev.QueueDepth, ev.At, ev.LatencyNs)
	}
	w.Flush()
	return sb.String()
}

// PathHops returns the hops that advance or terminate the packet —
// forward, local, drop, lost — skipping block and preempt events, which
// annotate a traversal already represented by the same node's terminal
// hop. Both substrates produce the same path hops for the same route,
// which is what the conformance harness compares. Safe on a nil
// receiver.
func (p *PacketTrace) PathHops() []HopEvent {
	if p == nil {
		return nil
	}
	out := make([]HopEvent, 0, len(p.Hops))
	for _, ev := range p.Hops {
		if ev.Action == ActionBlock || ev.Action == ActionPreempt {
			continue
		}
		out = append(out, ev)
	}
	return out
}

// Summary is a one-line digest of the record: the node path and the
// terminal action, e.g. "h1 > r1 > r2 > h2 local" or
// "h1 > r1 drop:no-segment". Block and preempt events are elided (see
// PathHops). Safe on a nil receiver.
func (p *PacketTrace) Summary() string {
	hops := p.PathHops()
	if len(hops) == 0 {
		return "(no trace)"
	}
	var sb strings.Builder
	for i, ev := range hops {
		if i > 0 {
			sb.WriteString(" > ")
		}
		sb.WriteString(ev.Node)
	}
	last := hops[len(hops)-1]
	switch last.Action {
	case ActionDrop:
		fmt.Fprintf(&sb, " drop:%s", last.Reason)
	case ActionForward:
		sb.WriteString(" (in flight)")
	default:
		fmt.Fprintf(&sb, " %s", last.Action)
	}
	return sb.String()
}
