// Package trace is the hop-level observability layer shared by both
// forwarding substrates. The paper's central performance claim is that
// cut-through source routing reduces the per-hop delay to the switch
// decision time (§2.1, §6.1); end-to-end benchmarks can confirm the
// total, but only a per-hop record can show *where* a packet spent its
// time or why it was dropped at a given hop — and in a source-routed
// network no router holds enough state to answer that after the fact.
//
// The design is packet-centric: a *PacketTrace rides with the packet
// (in netsim.Transmission, in livenet.Frame) and each node appends one
// HopEvent per action — forward (cut-through or store-and-forward),
// local delivery, drop with a stats.DropReason, preemption, blocking,
// or in-flight loss. When the packet's story ends the record is handed
// to the Tracer that began it: a Recorder retains whole records for
// per-hop tables, a Metrics folds them into aggregate counters,
// latency histograms and drop-reason buckets for export.
//
// # The nil-Tracer zero-overhead contract
//
// Tracing is disabled by default and its disabled cost is part of the
// forwarding fast path's performance contract: with no Tracer
// installed every per-packet trace pointer is nil, every emission site
// is behind a single nil check, and a forwarded hop performs zero
// additional allocations and zero time-source reads
// (livenet's TestForwardHopAllocs pins this). Substrates must
// therefore guard all HopEvent construction, clock reads and queue
// depth probes with `if pt != nil`.
//
// Hop timestamps come from an internal/clock.Source: virtual
// nanoseconds on the netsim substrate, monotonic wall nanoseconds on
// livenet. The two bases are not comparable with each other — only
// within one record.
package trace

import (
	"repro/internal/stats"
)

// Action classifies what a node did with a packet at one hop.
type Action uint8

const (
	// ActionForward: the packet was transmitted toward its next hop.
	ActionForward Action = iota
	// ActionLocal: the packet was delivered to the node's own stack.
	ActionLocal
	// ActionDrop: the packet was discarded; Reason says why.
	ActionDrop
	// ActionPreempt: the packet aborted a lower-priority transmission
	// in progress on its output port (§2.1).
	ActionPreempt
	// ActionBlock: the output port was busy (or rate-gated), so the
	// packet was fully received and buffered — the hop degrades from
	// cut-through to store-and-forward (§2.1).
	ActionBlock
	// ActionLost: the packet died in flight — link fault injection or
	// an aborted transmission — rather than by a router's decision.
	ActionLost
	// ActionFailover: the node found the hop's primary port down and
	// rewrote the route to a ranked in-header alternate; OutPort is the
	// alternate taken. Non-terminal — the next hops show the branch.
	ActionFailover

	numActions
)

var actionNames = [numActions]string{
	"forward", "local", "drop", "preempt", "block", "lost", "failover",
}

func (a Action) String() string {
	if int(a) < len(actionNames) {
		return actionNames[a]
	}
	return "unknown"
}

// HopEvent is one observation of a packet at a node. Which fields are
// meaningful depends on Action: Reason only for ActionDrop, OutPort and
// CutThrough only for ActionForward, QueueDepth for forward/block.
type HopEvent struct {
	Node    string // node name
	InPort  uint8  // arrival port (0 for locally originated packets)
	OutPort uint8  // departure port for ActionForward
	Action  Action
	Reason  stats.DropReason // drop bucket, valid when Action == ActionDrop
	// QueueDepth is the output-queue occupancy observed at the action:
	// packets for netsim output queues, frames for livenet channels.
	QueueDepth int
	// CutThrough reports whether a forward began while the tail was
	// still arriving (netsim; livenet always stores a full frame).
	CutThrough bool
	// At is the clock.Source stamp of the action in nanoseconds —
	// virtual time on netsim, monotonic wall time on livenet.
	At int64
	// LatencyNs is the per-hop latency: leading-edge arrival at this
	// node to the action. For a store-and-forward hop it includes the
	// queue wait.
	LatencyNs int64
}

// PacketTrace accumulates the per-hop records of one packet. It is
// owned by whichever node currently owns the packet (ownership moves
// with the frame/transmission, so appends never race); Done hands the
// finished record to the Tracer that began it.
//
// Limits, by design: tree-multicast fanout ends the parent record at
// the fanout router (branches are independent packets and are not
// traced), and a broadcast delivery on a shared segment appends all
// receivers' events to the one record.
type PacketTrace struct {
	// ID is the packet's identity as derived by the Tracer (e.g. the
	// conformance harness's flow ID); 0 when the Tracer cannot tell.
	ID   uint64
	Hops []HopEvent

	// Ctx is the packet's cross-process trace identity, if any: set by
	// cluster-aware tracers (ClusterTracer) so a frame leaving this
	// process through a tunnel or gateway can carry its trace on the
	// wire. Zero for process-local records.
	Ctx Context

	sink Tracer
}

// Add appends one hop observation. Safe on a nil receiver (no-op), so
// emission sites stay branch-free — but substrates should still guard
// event *construction* behind a nil check to keep the disabled path at
// zero cost.
func (p *PacketTrace) Add(ev HopEvent) {
	if p == nil {
		return
	}
	p.Hops = append(p.Hops, ev)
}

// Done hands the finished record to its Tracer. Safe on a nil receiver
// and idempotent: the first call delivers, later calls are no-ops
// (broadcast deliveries can reach several terminal handlers).
func (p *PacketTrace) Done() {
	if p == nil || p.sink == nil {
		return
	}
	sink := p.sink
	p.sink = nil
	sink.Finish(p)
}

// Tracer receives per-packet trace records. Implementations must be
// safe for concurrent use: on the livenet substrate Begin and Finish
// are called from host and router goroutines.
type Tracer interface {
	// Begin opens a record for a packet about to be injected; payload
	// is the user data (implementations may derive an ID from it).
	// Returning nil skips tracing for this packet.
	Begin(payload []byte) *PacketTrace
	// Finish consumes a completed record: the packet was delivered,
	// dropped, or lost.
	Finish(*PacketTrace)
}

// Start opens a per-packet record against t, tolerating a nil or
// declining Tracer: the result is nil exactly when tracing is off for
// this packet, and every downstream Add/Done is then a no-op.
func Start(t Tracer, payload []byte) *PacketTrace {
	if t == nil {
		return nil
	}
	pt := t.Begin(payload)
	if pt != nil {
		pt.sink = t
	}
	return pt
}

// Tee fans records out to several tracers: Begin asks the first
// non-declining tracer for the record (so IDs come from it) and Finish
// delivers the completed record to every member.
func Tee(tracers ...Tracer) Tracer { return teeTracer(tracers) }

type teeTracer []Tracer

func (t teeTracer) Begin(payload []byte) *PacketTrace {
	for _, tr := range t {
		if tr == nil {
			continue
		}
		if pt := tr.Begin(payload); pt != nil {
			return pt
		}
	}
	return nil
}

func (t teeTracer) Finish(pt *PacketTrace) {
	for _, tr := range t {
		if tr != nil {
			tr.Finish(pt)
		}
	}
}
