package trace

import "encoding/binary"

// Context is the compact trace identity that crosses process
// boundaries alongside a packet: enough for the receiving process to
// resume the packet's story under the same cluster-wide trace ID
// without shipping the accumulated hop records themselves. It rides in
// the SIRP framing of internal/udpnet tunnels and in the gateway's
// stream messages.
//
// Origin is a Unix wall-clock timestamp (time.Now().UnixNano() at the
// node that began the trace) — unlike hop-event stamps, which use the
// process-local monotonic clock.Source base, the origin must be
// comparable across processes so receivers can attribute one-way wire
// time. On a single machine (the cluster launcher's deployment) the
// processes share one clock; across machines the skew bound is
// whatever the deployment's clock sync provides (§4.2 discusses the
// analogous bound for VMTP timestamps).
//
// Budget bounds how many more process crossings the context may make;
// each tunnel or gateway crossing decrements it, so a routing loop
// cannot ship trace headers forever. A context with ID 0 is "not
// traced" — the wire encodings omit it entirely, preserving the
// zero-overhead contract for untraced traffic.
type Context struct {
	ID     uint64 // cluster-unique trace ID (0: untraced)
	Origin int64  // Unix ns at the originating node
	Budget uint8  // remaining process crossings
}

// ContextWireLen is the encoded size of a Context: ID (8) + Origin (8)
// + Budget (1).
const ContextWireLen = 17

// DefaultHopBudget is the initial process-crossing allowance for a new
// trace. Cluster topologies are small; 8 crossings outlasts any
// non-looping route.
const DefaultHopBudget = 8

// Valid reports whether c identifies a live trace.
func (c Context) Valid() bool { return c.ID != 0 }

// CanHop reports whether c may cross one more process boundary.
func (c Context) CanHop() bool { return c.ID != 0 && c.Budget > 0 }

// Next returns the context to put on the wire for one process
// crossing: the same identity with one less hop budget.
func (c Context) Next() Context {
	if c.Budget > 0 {
		c.Budget--
	}
	return c
}

// Encode writes the wire form into dst, which must hold at least
// ContextWireLen bytes, and returns the bytes written.
func (c Context) Encode(dst []byte) int {
	binary.BigEndian.PutUint64(dst[0:8], c.ID)
	binary.BigEndian.PutUint64(dst[8:16], uint64(c.Origin))
	dst[16] = c.Budget
	return ContextWireLen
}

// DecodeContext parses a wire-form Context; ok is false when b is too
// short.
func DecodeContext(b []byte) (c Context, ok bool) {
	if len(b) < ContextWireLen {
		return Context{}, false
	}
	c.ID = binary.BigEndian.Uint64(b[0:8])
	c.Origin = int64(binary.BigEndian.Uint64(b[8:16]))
	c.Budget = b[16]
	return c, true
}

// Resumer is implemented by Tracers that can re-open a record for a
// packet whose trace began in another process. Resume is the
// cross-process analogue of Begin: it may decline by returning nil,
// and the returned record keeps the context's cluster-wide ID.
type Resumer interface {
	Tracer
	Resume(ctx Context) *PacketTrace
}

// Resume re-opens a record against t for a context that arrived from
// another process, tolerating a nil tracer or one that cannot resume:
// the result is nil exactly when this process will not trace the
// packet, and every downstream Add/Done is then a no-op.
func Resume(t Tracer, ctx Context) *PacketTrace {
	r, ok := t.(Resumer)
	if !ok || !ctx.Valid() {
		return nil
	}
	pt := r.Resume(ctx)
	if pt != nil {
		pt.sink = t
	}
	return pt
}
