package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/stats"
)

func TestNilTraceIsInert(t *testing.T) {
	var pt *PacketTrace
	pt.Add(HopEvent{Node: "r1"}) // must not panic
	pt.Done()
	if got := Start(nil, []byte("x")); got != nil {
		t.Fatalf("Start(nil) = %v, want nil", got)
	}
	if s := pt.Format(); !strings.Contains(s, "no trace") {
		t.Fatalf("nil Format() = %q", s)
	}
	if s := pt.Summary(); s != "(no trace)" {
		t.Fatalf("nil Summary() = %q", s)
	}
}

func TestDoneIdempotent(t *testing.T) {
	rec := NewRecorder(nil)
	pt := Start(rec, nil)
	pt.Add(HopEvent{Node: "h1", Action: ActionLocal})
	pt.Done()
	pt.Done() // broadcast deliveries can reach several handlers
	if n := len(rec.Traces()); n != 1 {
		t.Fatalf("record delivered %d times, want 1", n)
	}
}

func TestRecorderIDAndLimit(t *testing.T) {
	rec := NewRecorder(func(p []byte) uint64 { return uint64(len(p)) })
	rec.SetLimit(2)
	for i := 0; i < 3; i++ {
		pt := Start(rec, make([]byte, 7))
		pt.Add(HopEvent{Node: "r1", Action: ActionForward})
		pt.Done()
	}
	if n := len(rec.Traces()); n != 2 {
		t.Fatalf("retained %d records, want 2 (limit)", n)
	}
	if d := rec.Discarded(); d != 1 {
		t.Fatalf("Discarded() = %d, want 1", d)
	}
	if got := rec.ByID(7); len(got) != 2 {
		t.Fatalf("ByID(7) returned %d records, want 2", len(got))
	}
	if got := rec.ByID(99); got != nil {
		t.Fatalf("ByID(99) = %v, want none", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				pt := Start(rec, nil)
				pt.Add(HopEvent{Node: "r", Action: ActionForward})
				pt.Done()
			}
		}()
	}
	wg.Wait()
	if n := len(rec.Traces()); n != 800 {
		t.Fatalf("retained %d records, want 800", n)
	}
}

func TestMetricsAggregation(t *testing.T) {
	m := NewMetrics()

	pt := Start(m, nil)
	pt.Add(HopEvent{Node: "r1", InPort: 1, OutPort: 2, Action: ActionForward, CutThrough: true, LatencyNs: 900})
	pt.Add(HopEvent{Node: "r2", InPort: 1, Action: ActionBlock, QueueDepth: 3})
	pt.Add(HopEvent{Node: "r2", InPort: 1, OutPort: 3, Action: ActionForward, LatencyNs: 40_000})
	pt.Add(HopEvent{Node: "h2", InPort: 1, Action: ActionLocal, LatencyNs: 500})
	pt.Done()

	pt = Start(m, nil)
	pt.Add(HopEvent{Node: "r1", InPort: 1, Action: ActionDrop, Reason: stats.DropNoSegment})
	pt.Done()

	s := m.Snapshot()
	if s.Packets != 2 || s.Hops != 5 {
		t.Fatalf("packets=%d hops=%d, want 2/5", s.Packets, s.Hops)
	}
	if s.Forwarded != 2 || s.Local != 1 {
		t.Fatalf("forwarded=%d local=%d, want 2/1", s.Forwarded, s.Local)
	}
	if s.CutThrough != 1 || s.StoreForward != 1 || s.Blocks != 1 {
		t.Fatalf("cut=%d store=%d blocks=%d, want 1/1/1", s.CutThrough, s.StoreForward, s.Blocks)
	}
	if s.Drops["no-segment"] != 1 {
		t.Fatalf("drops = %v, want no-segment:1", s.Drops)
	}
	var r1fwd *PortMetrics
	for i := range s.Ports {
		if s.Ports[i].Port == "r1:2" {
			r1fwd = &s.Ports[i]
		}
	}
	if r1fwd == nil || r1fwd.Forwarded != 1 {
		t.Fatalf("per-port r1:2 = %+v, want forwarded=1", r1fwd)
	}
	// Latency histogram saw 900, 40000, 500 → p99 upper bound >= 40000.
	if s.HopLatencyP99Ns < 40_000 {
		t.Fatalf("p99 = %d, want >= 40000", s.HopLatencyP99Ns)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
}

func TestTee(t *testing.T) {
	rec := NewRecorder(nil)
	m := NewMetrics()
	tee := Tee(nil, rec, m)
	pt := Start(tee, nil)
	pt.Add(HopEvent{Node: "h1", Action: ActionLocal})
	pt.Done()
	if len(rec.Traces()) != 1 {
		t.Fatal("recorder missed the record")
	}
	if s := m.Snapshot(); s.Packets != 1 || s.Local != 1 {
		t.Fatalf("metrics missed the record: %+v", s)
	}
}

func TestFormatAndSummary(t *testing.T) {
	pt := &PacketTrace{ID: 42}
	pt.Add(HopEvent{Node: "h1", Action: ActionForward, OutPort: 1, CutThrough: false})
	pt.Add(HopEvent{Node: "r1", InPort: 1, OutPort: 2, Action: ActionForward, CutThrough: true, LatencyNs: 800})
	pt.Add(HopEvent{Node: "h2", InPort: 1, Action: ActionLocal})
	s := pt.Format()
	for _, want := range []string{"packet 42", "cut-through", "store-fwd", "local", "h1", "r1", "h2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Format() missing %q:\n%s", want, s)
		}
	}
	if sum := pt.Summary(); sum != "h1 > r1 > h2 local" {
		t.Fatalf("Summary() = %q", sum)
	}

	drop := &PacketTrace{}
	drop.Add(HopEvent{Node: "r1", Action: ActionDrop, Reason: stats.DropBadPort})
	if sum := drop.Summary(); sum != "r1 drop:bad-port" {
		t.Fatalf("drop Summary() = %q", sum)
	}
	if f := drop.Format(); !strings.Contains(f, "drop:bad-port") {
		t.Fatalf("drop Format() missing reason:\n%s", f)
	}
}

func TestActionStrings(t *testing.T) {
	want := map[Action]string{
		ActionForward: "forward", ActionLocal: "local", ActionDrop: "drop",
		ActionPreempt: "preempt", ActionBlock: "block", ActionLost: "lost",
	}
	for a, s := range want {
		if a.String() != s {
			t.Fatalf("Action(%d).String() = %q, want %q", a, a.String(), s)
		}
	}
	if Action(200).String() != "unknown" {
		t.Fatal("out-of-range Action should stringify as unknown")
	}
}
