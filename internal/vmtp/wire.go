// Package vmtp implements a VMTP-style transaction transport (Cheriton,
// RFC 1045) with the properties §4 of the Sirpent paper requires of a
// transport running over a network layer that offers no checksums, no
// TTL and no fragmentation:
//
//   - 64-bit entity identifiers unique independent of network addresses,
//     so misdelivered packets are recognized and discarded (§4.1);
//   - a 32-bit millisecond creation timestamp in every packet, enforcing
//     the maximum packet lifetime end-to-end with approximately
//     synchronized clocks instead of router-updated TTLs (§4.2);
//   - packet groups with selective retransmission and rate-based (paced)
//     transmission, handling large logical packets without network-layer
//     fragmentation (§4.3);
//   - transactional request/response with RTT estimation and failover
//     across alternate source routes (§6.3).
package vmtp

import (
	"encoding/binary"
	"errors"
	"hash/crc32"

	"repro/internal/clock"
)

// HeaderLen is the encoded VMTP header size.
const HeaderLen = 40

// MaxGroupPackets is the packet-group size limit imposed by the 32-bit
// delivery mask.
const MaxGroupPackets = 32

// MaxPacketData is the default segment size: the paper sizes VIPER's
// 1500-byte unit as "roughly 1 kilobyte transport packet plus up to 500
// bytes of VIPER header information" (§5).
const MaxPacketData = 1024

// Kind discriminates VMTP packets.
type Kind uint8

const (
	KindRequest Kind = iota
	KindResponse
	KindAck // carries the receiver's delivery mask for selective retransmission
)

func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindResponse:
		return "response"
	case KindAck:
		return "ack"
	}
	return "?"
}

// Header is the VMTP packet header.
type Header struct {
	Client   uint64 // client entity identifier
	Server   uint64 // server entity identifier
	Txn      uint32 // transaction identifier
	Kind     Kind
	PktIndex uint8  // index within the packet group
	NPkts    uint8  // packets in the group
	Flags    uint8  // FlagProbe; other bits reserved
	Mask     uint32 // delivery mask (acks)
	TotalLen uint32 // total message length across the group
	// Timestamp is the creation time in milliseconds (§4.2); receivers
	// discard packets older than the acceptable maximum packet
	// lifetime.
	Timestamp clock.Timestamp
}

// Packet is a VMTP header plus its data slice of the message.
type Packet struct {
	Header
	Data []byte
}

// Errors.
var (
	ErrShort       = errors.New("vmtp: short packet")
	ErrChecksum    = errors.New("vmtp: checksum mismatch")
	ErrGroupTooBig = errors.New("vmtp: message exceeds one packet group")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes the packet with its trailing CRC-32C over header and
// data — the transport checksum Sirpent relies on ("Because Sirpent does
// not use a checksum", §4.1; VMTP carries checksum and timestamp in the
// trailer).
func (p *Packet) Encode() []byte {
	b := make([]byte, HeaderLen+len(p.Data))
	binary.BigEndian.PutUint64(b[0:8], p.Client)
	binary.BigEndian.PutUint64(b[8:16], p.Server)
	binary.BigEndian.PutUint32(b[16:20], p.Txn)
	b[20] = byte(p.Kind)
	b[21] = p.PktIndex
	b[22] = p.NPkts
	b[23] = p.Flags
	binary.BigEndian.PutUint32(b[24:28], p.Mask)
	binary.BigEndian.PutUint32(b[28:32], p.TotalLen)
	binary.BigEndian.PutUint32(b[32:36], uint32(p.Timestamp))
	copy(b[HeaderLen:], p.Data)
	// The checksum field is zero while the sum is computed over the
	// whole packet, then filled in.
	sum := crc32.Checksum(b, crcTable)
	binary.BigEndian.PutUint32(b[36:40], sum)
	return b
}

// Decode parses and verifies an encoded packet.
func Decode(b []byte) (*Packet, error) {
	if len(b) < HeaderLen {
		return nil, ErrShort
	}
	sum := binary.BigEndian.Uint32(b[36:40])
	cp := append([]byte(nil), b...)
	cp[36], cp[37], cp[38], cp[39] = 0, 0, 0, 0
	if crc32.Checksum(cp, crcTable) != sum {
		return nil, ErrChecksum
	}
	p := &Packet{
		Header: Header{
			Client:    binary.BigEndian.Uint64(b[0:8]),
			Server:    binary.BigEndian.Uint64(b[8:16]),
			Txn:       binary.BigEndian.Uint32(b[16:20]),
			Kind:      Kind(b[20]),
			PktIndex:  b[21],
			NPkts:     b[22],
			Flags:     b[23],
			Mask:      binary.BigEndian.Uint32(b[24:28]),
			TotalLen:  binary.BigEndian.Uint32(b[28:32]),
			Timestamp: clock.Timestamp(binary.BigEndian.Uint32(b[32:36])),
		},
	}
	if len(b) > HeaderLen {
		p.Data = append([]byte(nil), b[HeaderLen:]...)
	}
	return p, nil
}

// Segment splits a message into equal-size per-packet chunks (last chunk
// may be shorter) such that each fits in maxData bytes. Equal chunking
// lets the receiver place packet i at offset i·ChunkSize(TotalLen,NPkts)
// without knowing the sender's configuration.
func Segment(msg []byte, maxData int) ([][]byte, error) {
	if maxData <= 0 {
		maxData = MaxPacketData
	}
	n := (len(msg) + maxData - 1) / maxData
	if n == 0 {
		n = 1
	}
	if n > MaxGroupPackets {
		return nil, ErrGroupTooBig
	}
	chunk := ChunkSize(len(msg), n)
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(msg) {
			hi = len(msg)
		}
		if lo > len(msg) {
			lo = len(msg)
		}
		out = append(out, msg[lo:hi])
	}
	return out, nil
}

// ChunkSize returns the per-packet chunk size for a message of totalLen
// bytes split into n packets.
func ChunkSize(totalLen, n int) int {
	if n <= 0 {
		return totalLen
	}
	return (totalLen + n - 1) / n
}
