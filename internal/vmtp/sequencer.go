package vmtp

import (
	"errors"
	"sync"
)

// ErrReplayed is returned by Sequencer.Admit for a sequence number
// that has already been admitted and completed: the caller should
// acknowledge success without re-applying the side effect (VMTP may
// retry a transaction whose response was lost, so idempotent replay is
// part of the delivery contract).
var ErrReplayed = errors.New("vmtp: sequence already delivered")

// Sequencer serializes out-of-order transaction arrivals into in-order
// side effects. VMTP transactions within a stream may be issued
// concurrently (a send window) and their handlers may run in any
// order; each handler calls Admit(seq) and blocks until every earlier
// sequence number has been applied, applies its effect (e.g. writes
// its bytes to a TCP socket), then calls Done. Abort releases every
// waiter with the given error, for teardown.
//
// Sequence numbers start at 0 and must not wrap; uint32 groups of even
// one byte each bound a stream at 4 Gi effects, far beyond any TCP
// connection this repo relays.
type Sequencer struct {
	mu   sync.Mutex
	cond *sync.Cond
	next uint32
	err  error
}

// NewSequencer returns a Sequencer expecting sequence 0 first.
func NewSequencer() *Sequencer {
	s := &Sequencer{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Admit blocks until seq is the next in-order sequence number. It
// returns nil when the caller holds its turn (the caller MUST then
// call Done exactly once), ErrReplayed if seq was already delivered,
// or the Abort error.
func (s *Sequencer) Admit(seq uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.err == nil && seq > s.next {
		s.cond.Wait()
	}
	if s.err != nil {
		return s.err
	}
	if seq < s.next {
		return ErrReplayed
	}
	return nil
}

// Done marks the currently admitted sequence number applied and wakes
// the next waiter.
func (s *Sequencer) Done() {
	s.mu.Lock()
	s.next++
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Abort poisons the sequencer: all current and future Admit calls
// return err (the first non-nil error wins).
func (s *Sequencer) Abort(err error) {
	if err == nil {
		err = errors.New("vmtp: sequencer aborted")
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// Next returns the next sequence number expected (i.e. how many have
// been delivered).
func (s *Sequencer) Next() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}
