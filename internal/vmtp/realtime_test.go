package vmtp

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/viper"
)

// testWire is a direct in-process carrier between two RT endpoints
// with seeded pseudorandom packet loss. (Deterministic modular loss —
// "drop every Nth" — phase-locks with fixed-size retransmission
// rounds and can drop the same packet forever; random loss is what
// the recovery machinery is specified against.)
// A filter hook can drop packets by content (e.g. only responses).
type testWire struct {
	mu       sync.Mutex
	dst      *RT
	ret      []viper.Segment
	lossRate float64
	rnd      *rand.Rand
	filter   func(p *Packet) bool // return false to drop
}

func (w *testWire) Send(route []viper.Segment, pkt []byte) error {
	w.mu.Lock()
	drop := w.lossRate > 0 && w.rnd.Float64() < w.lossRate
	w.mu.Unlock()
	if drop {
		return nil
	}
	if w.filter != nil {
		if p, err := Decode(pkt); err == nil && !w.filter(p) {
			return nil
		}
	}
	cp := append([]byte(nil), pkt...)
	w.dst.Deliver(cp, w.ret)
	return nil
}

var testRoute = []viper.Segment{{Port: 1}}

// rtPair wires a client and server RT together.
func rtPair(t *testing.T, cfg RTConfig) (*RT, *RT, *testWire, *testWire) {
	t.Helper()
	toServer := &testWire{ret: testRoute, rnd: rand.New(rand.NewSource(71))}
	toClient := &testWire{ret: testRoute, rnd: rand.New(rand.NewSource(72))}
	client := NewRT(0xC1, CarrierFunc(toServer.Send), cfg)
	server := NewRT(0x51, CarrierFunc(toClient.Send), cfg)
	toServer.dst = server
	toClient.dst = client
	t.Cleanup(func() {
		client.Close()
		server.Close()
	})
	return client, server, toServer, toClient
}

func TestRTBasicCall(t *testing.T) {
	client, server, _, _ := rtPair(t, RTConfig{})
	server.SetHandler(func(from uint64, data []byte, ret []viper.Segment) []byte {
		if from != 0xC1 {
			t.Errorf("from = %#x, want 0xC1", from)
		}
		return append([]byte("echo:"), data...)
	})
	resp, err := client.Call(0x51, testRoute, []byte("hello"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp) != "echo:hello" {
		t.Fatalf("resp = %q", resp)
	}
	if s := client.Stats(); s.CallsCompleted != 1 {
		t.Fatalf("CallsCompleted = %d", s.CallsCompleted)
	}
	if client.RTT(0x51) == 0 {
		t.Fatal("no RTT recorded after clean call")
	}
}

func TestRTLargeGroupUnderLoss(t *testing.T) {
	cfg := RTConfig{
		BaseTimeout: 20 * time.Millisecond,
		GapAckDelay: time.Millisecond,
		MaxRetries:  50,
		CallTimeout: 5 * time.Second,
	}
	client, server, toServer, toClient := rtPair(t, cfg)
	toServer.lossRate = 0.15
	toClient.lossRate = 0.2
	want := make([]byte, 30000)
	rnd := rand.New(rand.NewSource(8))
	rnd.Read(want)
	var got []byte
	server.SetHandler(func(_ uint64, data []byte, _ []viper.Segment) []byte {
		got = append([]byte(nil), data...)
		return data
	})
	resp, err := client.Call(0x51, testRoute, want)
	if err != nil {
		t.Fatalf("Call under loss: %v\nclient: %+v\nserver: %+v", err, client.Stats(), server.Stats())
	}
	if !bytes.Equal(got, want) {
		t.Fatal("request data corrupted under loss")
	}
	if !bytes.Equal(resp, want) {
		t.Fatal("response data corrupted under loss")
	}
	s := client.Stats()
	if s.Retransmissions == 0 && s.SelectiveResends == 0 {
		t.Fatal("expected retransmission activity under loss")
	}
}

// TestRTSlowHandlerProbes proves the "received, response pending"
// contract: once the full group is acked, a handler that blocks far
// past the retransmission budget must not fail the call.
func TestRTSlowHandlerProbes(t *testing.T) {
	cfg := RTConfig{
		BaseTimeout: 10 * time.Millisecond,
		MaxRetries:  3,
	}
	client, server, _, _ := rtPair(t, cfg)
	server.SetHandler(func(_ uint64, data []byte, _ []viper.Segment) []byte {
		time.Sleep(400 * time.Millisecond) // >> MaxRetries * backoff
		return data
	})
	resp, err := client.Call(0x51, testRoute, []byte("slow"))
	if err != nil {
		t.Fatalf("Call with slow handler: %v", err)
	}
	if string(resp) != "slow" {
		t.Fatalf("resp = %q", resp)
	}
}

// TestRTDuplicateSuppression drops the first response so the client
// retransmits a request the server has already served: the handler
// must run once and the cached response must answer the duplicate.
func TestRTDuplicateSuppression(t *testing.T) {
	cfg := RTConfig{BaseTimeout: 15 * time.Millisecond}
	client, server, _, toClient := rtPair(t, cfg)
	var dropped atomic.Bool
	toClient.filter = func(p *Packet) bool {
		if p.Kind == KindResponse && dropped.CompareAndSwap(false, true) {
			return false
		}
		return true
	}
	var invocations atomic.Int64
	server.SetHandler(func(_ uint64, data []byte, _ []viper.Segment) []byte {
		invocations.Add(1)
		return data
	})
	resp, err := client.Call(0x51, testRoute, []byte("once"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp) != "once" {
		t.Fatalf("resp = %q", resp)
	}
	if n := invocations.Load(); n != 1 {
		t.Fatalf("handler ran %d times, want 1", n)
	}
	waitFor(t, time.Second, func() bool { return server.Stats().DupRequests >= 1 })
}

func TestRTCallFailsWithoutServer(t *testing.T) {
	cfg := RTConfig{BaseTimeout: 5 * time.Millisecond, MaxRetries: 2}
	blackhole := CarrierFunc(func(_ []viper.Segment, _ []byte) error { return nil })
	client := NewRT(0xC1, blackhole, cfg)
	defer client.Close()
	_, err := client.Call(0x51, testRoute, []byte("void"))
	if !errors.Is(err, ErrCallFailed) {
		t.Fatalf("err = %v, want ErrCallFailed", err)
	}
	if s := client.Stats(); s.CallsFailed != 1 {
		t.Fatalf("CallsFailed = %d", s.CallsFailed)
	}
}

func TestRTClosedEndpoint(t *testing.T) {
	blackhole := CarrierFunc(func(_ []viper.Segment, _ []byte) error { return nil })
	client := NewRT(0xC1, blackhole, RTConfig{})
	client.Close()
	if _, err := client.Call(0x51, testRoute, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	client.Close() // idempotent
}

func TestRTConcurrentCalls(t *testing.T) {
	cfg := RTConfig{
		BaseTimeout: 20 * time.Millisecond,
		GapAckDelay: time.Millisecond,
		MaxRetries:  50,
	}
	client, server, toServer, toClient := rtPair(t, cfg)
	toServer.lossRate = 0.08
	toClient.lossRate = 0.08
	server.SetHandler(func(_ uint64, data []byte, _ []viper.Segment) []byte {
		return data
	})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				payload := make([]byte, 100+g*512+i)
				for j := range payload {
					payload[j] = byte(g + i + j)
				}
				resp, err := client.Call(0x51, testRoute, payload)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp, payload) {
					errs <- errors.New("echo mismatch")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s := client.Stats(); s.CallsCompleted != 64 {
		t.Fatalf("CallsCompleted = %d, want 64", s.CallsCompleted)
	}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestSequencerOrders(t *testing.T) {
	s := NewSequencer()
	const n = 64
	var mu sync.Mutex
	var order []uint32
	var wg sync.WaitGroup
	seqs := rand.New(rand.NewSource(4)).Perm(n)
	for _, seq := range seqs {
		wg.Add(1)
		go func(seq uint32) {
			defer wg.Done()
			if err := s.Admit(seq); err != nil {
				t.Errorf("Admit(%d): %v", seq, err)
				return
			}
			mu.Lock()
			order = append(order, seq)
			mu.Unlock()
			s.Done()
		}(uint32(seq))
	}
	wg.Wait()
	for i, seq := range order {
		if seq != uint32(i) {
			t.Fatalf("order[%d] = %d", i, seq)
		}
	}
	if s.Next() != n {
		t.Fatalf("Next = %d", s.Next())
	}
}

func TestSequencerReplay(t *testing.T) {
	s := NewSequencer()
	if err := s.Admit(0); err != nil {
		t.Fatal(err)
	}
	s.Done()
	if err := s.Admit(0); !errors.Is(err, ErrReplayed) {
		t.Fatalf("replay err = %v", err)
	}
}

func TestSequencerAbort(t *testing.T) {
	s := NewSequencer()
	boom := errors.New("boom")
	done := make(chan error, 1)
	go func() {
		done <- s.Admit(5) // blocks: 0..4 not delivered
	}()
	time.Sleep(10 * time.Millisecond)
	s.Abort(boom)
	if err := <-done; !errors.Is(err, boom) {
		t.Fatalf("aborted Admit err = %v", err)
	}
	if err := s.Admit(0); !errors.Is(err, boom) {
		t.Fatalf("post-abort Admit err = %v", err)
	}
}
