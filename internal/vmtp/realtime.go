package vmtp

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/viper"
)

// This file is the wall-clock realization of the VMTP transaction
// machinery: the same wire format, packet groups, selective
// retransmission and duplicate suppression as the simulation Endpoint,
// but driven by real timers and safe for concurrent callers, so real
// application bytes (internal/gateway) can ride VMTP packet groups over
// the livenet substrate. An RT endpoint is bound to a Carrier — any
// "send these encoded bytes along this source route" primitive, in
// practice a livenet host — and fed arriving packets through Deliver.
//
// Differences from the simulation Endpoint, all deliberate:
//
//   - Call blocks. The caller's goroutine is the natural unit of
//     flow control for stream relaying: a transaction that cannot
//     complete (slow receiver, congested mesh) holds its caller, and
//     the backpressure propagates to whatever socket feeds it.
//   - Full-group acks double as "request received, response pending".
//     Once the receiver acks the complete delivery mask, the client
//     stops retransmitting data and only probes (FlagProbe) while the
//     server-side handler runs — a handler deliberately blocking for
//     backpressure must not trigger request retransmission storms.
//   - One route per call. Alternate-route failover stays with the
//     simulation endpoint and the directory; RT callers re-query on
//     error instead.
//
// Deliver never blocks: packets are decoded and queued to an internal
// receive goroutine, and a full queue drops the packet (counted in
// Stats.QueueDrops). VMTP's retransmission recovers the loss, exactly
// as it would recover wire loss — which keeps the delivering goroutine
// (a livenet host) deadlock-free no matter how congested the endpoint.

// Carrier is the packet path under a real-time endpoint: Send
// transmits one encoded VMTP packet along a source route. livenet's
// Host.Send satisfies it via CarrierFunc.
type Carrier interface {
	Send(route []viper.Segment, pkt []byte) error
}

// CarrierFunc adapts a function to the Carrier interface.
type CarrierFunc func(route []viper.Segment, pkt []byte) error

// Send implements Carrier.
func (f CarrierFunc) Send(route []viper.Segment, pkt []byte) error { return f(route, pkt) }

// FlagProbe marks a KindRequest packet as a status probe: it carries
// no data to place, and only elicits either the cached response (if
// the transaction completed) or a full-mask ack (if the request was
// received and the handler is still running). Clients send probes
// instead of data retransmissions once the full group is acked.
const FlagProbe uint8 = 0x01

// RTConfig tunes a real-time endpoint. The zero value gets sane
// defaults for a LAN-scale mesh.
type RTConfig struct {
	// MaxPacketData bounds the data per packet; default MaxPacketData.
	MaxPacketData int
	// PacingGap is VMTP's rate-based flow control: the inter-packet
	// gap within a packet group (§4.3). Zero sends back to back.
	PacingGap time.Duration
	// BaseTimeout seeds the retransmission timer before an RTT
	// estimate exists. Default 50ms.
	BaseTimeout time.Duration
	// MaxTimeout caps the exponential retransmission backoff.
	// Default 2s.
	MaxTimeout time.Duration
	// MaxRetries bounds data retransmissions before the call fails.
	// Probes after a full-group ack do not count. Default 8.
	MaxRetries int
	// CallTimeout bounds one whole transaction, including the time a
	// remote handler may block for backpressure. Default 2m.
	CallTimeout time.Duration
	// GapAckDelay is how long a receiver waits on an incomplete quiet
	// group before sending a selective ack of what it has (§4.3).
	// Default 2ms.
	GapAckDelay time.Duration
	// GroupTimeout discards an incomplete request group if the missing
	// packets never arrive. Default 10s.
	GroupTimeout time.Duration
	// ResponseCacheTTL is the duplicate-suppression window. Default 10s.
	ResponseCacheTTL time.Duration
	// MPL is the maximum packet lifetime (§4.2). Default 30s.
	MPL time.Duration
	// FutureSlack tolerates receiver clocks behind senders. Default 5s.
	FutureSlack time.Duration
	// QueueDepth is the receive queue length between Deliver and the
	// processing goroutine. Default 512.
	QueueDepth int
}

func (c RTConfig) withDefaults() RTConfig {
	if c.MaxPacketData == 0 {
		c.MaxPacketData = MaxPacketData
	}
	if c.BaseTimeout == 0 {
		c.BaseTimeout = 50 * time.Millisecond
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 2 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.CallTimeout == 0 {
		c.CallTimeout = 2 * time.Minute
	}
	if c.GapAckDelay == 0 {
		c.GapAckDelay = 2 * time.Millisecond
	}
	if c.GroupTimeout == 0 {
		c.GroupTimeout = 10 * time.Second
	}
	if c.ResponseCacheTTL == 0 {
		c.ResponseCacheTTL = 10 * time.Second
	}
	if c.MPL == 0 {
		c.MPL = 30 * time.Second
	}
	if c.FutureSlack == 0 {
		c.FutureSlack = 5 * time.Second
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 512
	}
	return c
}

// RTHandler serves requests on a real-time endpoint. It runs on its
// own goroutine per transaction and MAY block (that is the
// backpressure path); ret is the trailer-built return route of the
// request's freshest packet, deep-copied and safe to retain.
type RTHandler func(from uint64, data []byte, ret []viper.Segment) []byte

// RT errors.
var (
	ErrCallFailed  = errors.New("vmtp: transaction failed (retries exhausted)")
	ErrCallTimeout = errors.New("vmtp: transaction timed out")
	ErrClosed      = errors.New("vmtp: endpoint closed")
)

// RT is a real-time VMTP entity: the transactional packet-group
// transport of §4 driven by wall-clock timers over an arbitrary
// Carrier. All methods are safe for concurrent use.
type RT struct {
	id  uint64
	car Carrier
	cfg RTConfig

	mu      sync.Mutex
	closed  bool
	nextTxn uint32
	calls   map[uint32]*rtCall
	rxReqs  map[groupKey]*rtRxGroup
	cache   map[groupKey]*rtRespEntry
	srtt    map[uint64]time.Duration
	rttvar  map[uint64]time.Duration
	handler RTHandler
	stats   Stats

	rx   chan rtDelivery
	done chan struct{}
	wg   sync.WaitGroup
}

type rtDelivery struct {
	pkt *Packet
	ret []viper.Segment
}

type rtCall struct {
	txn       uint32
	server    uint64
	route     []viper.Segment
	pkts      []*Packet
	acked     uint32
	full      uint32
	delivered bool
	retries   int
	timer     *time.Timer
	timeout   time.Duration
	resp      *rtRxGroup
	result    chan rtResult
	sent      time.Time
	clean     bool
}

type rtResult struct {
	data []byte
	err  error
}

type rtRxGroup struct {
	nPkts    uint8
	totalLen int
	mask     uint32
	data     []byte
	ret      []viper.Segment
	served   bool
	lastRx   time.Time
	ackArmed bool
}

func (g *rtRxGroup) complete() bool { return g.mask == fullMask(g.nPkts) }

type rtRespEntry struct {
	pkts []*Packet
	ret  []viper.Segment
}

// maxGroupLen bounds the reassembly buffer a hostile or corrupted
// header can make a receiver allocate.
const maxGroupLen = MaxGroupPackets * 64 * 1024

// NewRT creates a real-time VMTP entity with identifier id over the
// carrier. The caller feeds arriving packets through Deliver and must
// Close the endpoint when done.
func NewRT(id uint64, car Carrier, cfg RTConfig) *RT {
	cfg = cfg.withDefaults()
	rt := &RT{
		id:     id,
		car:    car,
		cfg:    cfg,
		calls:  make(map[uint32]*rtCall),
		rxReqs: make(map[groupKey]*rtRxGroup),
		cache:  make(map[groupKey]*rtRespEntry),
		srtt:   make(map[uint64]time.Duration),
		rttvar: make(map[uint64]time.Duration),
		rx:     make(chan rtDelivery, cfg.QueueDepth),
		done:   make(chan struct{}),
	}
	rt.wg.Add(1)
	go rt.rxLoop()
	return rt
}

// ID returns the entity identifier.
func (rt *RT) ID() uint64 { return rt.id }

// SetHandler installs the request handler (server role). Each
// transaction's handler invocation runs on its own goroutine.
func (rt *RT) SetHandler(h RTHandler) {
	rt.mu.Lock()
	rt.handler = h
	rt.mu.Unlock()
}

// Stats returns a snapshot of the endpoint's counters.
func (rt *RT) Stats() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.stats
}

// RTT returns the smoothed round-trip estimate toward a server entity,
// or 0 if none yet.
func (rt *RT) RTT(server uint64) time.Duration {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.srtt[server]
}

// RTTs returns a copy of every smoothed round-trip estimate, keyed by
// server entity — the per-peer latency view telemetry reports ship to
// the directory.
func (rt *RT) RTTs() map[uint64]time.Duration {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make(map[uint64]time.Duration, len(rt.srtt))
	for k, v := range rt.srtt {
		out[k] = v
	}
	return out
}

// Close shuts the endpoint down: outstanding calls fail with
// ErrClosed, timers are cancelled, and in-flight handler goroutines
// are waited for.
func (rt *RT) Close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	close(rt.done)
	for _, c := range rt.calls {
		c.timer.Stop()
		c.finish(nil, ErrClosed)
	}
	rt.calls = make(map[uint32]*rtCall)
	rt.mu.Unlock()
	rt.wg.Wait()
}

// finish delivers the call's outcome exactly once (the result channel
// has capacity 1 and a single consumer).
func (c *rtCall) finish(data []byte, err error) {
	select {
	case c.result <- rtResult{data: data, err: err}:
	default:
	}
}

// Deliver injects one arriving packet. data may alias a buffer the
// caller recycles after return (it is decoded, and thereby copied,
// before queuing); ret must be safe to retain (livenet's
// Delivery.ReturnRoute already is). Deliver never blocks: if the
// receive queue is full the packet is dropped and retransmission
// recovers it.
func (rt *RT) Deliver(data []byte, ret []viper.Segment) {
	p, err := Decode(data)
	if err != nil {
		rt.mu.Lock()
		rt.stats.ChecksumDrops++
		rt.mu.Unlock()
		return
	}
	if p.Timestamp != clock.InvalidTimestamp {
		age := clock.Age(nowTimestamp(), p.Timestamp)
		if age > rt.cfg.MPL.Milliseconds() || age < -rt.cfg.FutureSlack.Milliseconds() {
			rt.mu.Lock()
			rt.stats.StaleDrops++
			rt.mu.Unlock()
			return
		}
	}
	select {
	case rt.rx <- rtDelivery{pkt: p, ret: ret}:
	default:
		rt.mu.Lock()
		rt.stats.QueueDrops++
		rt.mu.Unlock()
	}
}

func nowTimestamp() clock.Timestamp {
	return clock.Timestamp(uint32(time.Now().UnixMilli()))
}

func (rt *RT) rxLoop() {
	defer rt.wg.Done()
	for {
		select {
		case d := <-rt.rx:
			rt.handle(d.pkt, d.ret)
		case <-rt.done:
			return
		}
	}
}

// Call runs one transaction to a server entity along a source route,
// blocking until the response arrives or the call fails. data larger
// than one packet is segmented into a paced packet group (§4.3).
func (rt *RT) Call(server uint64, route []viper.Segment, data []byte) ([]byte, error) {
	chunks, err := Segment(data, rt.cfg.MaxPacketData)
	if err != nil {
		return nil, err
	}
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil, ErrClosed
	}
	rt.nextTxn++
	c := &rtCall{
		txn:     rt.nextTxn,
		server:  server,
		route:   route,
		full:    fullMask(uint8(len(chunks))),
		result:  make(chan rtResult, 1),
		timeout: rt.timeoutLocked(server),
		sent:    time.Now(),
		clean:   true,
	}
	for i, ch := range chunks {
		c.pkts = append(c.pkts, &Packet{
			Header: Header{
				Client:   rt.id,
				Server:   server,
				Txn:      c.txn,
				Kind:     KindRequest,
				PktIndex: uint8(i),
				NPkts:    uint8(len(chunks)),
				TotalLen: uint32(len(data)),
			},
			Data: ch,
		})
	}
	rt.calls[c.txn] = c
	rt.stats.CallsStarted++
	c.timer = time.AfterFunc(c.timeout, func() { rt.onTimer(c.txn) })
	rt.mu.Unlock()

	rt.sendGroup(c.route, c.pkts, ^uint32(0), 0)

	deadline := time.NewTimer(rt.cfg.CallTimeout)
	defer deadline.Stop()
	select {
	case res := <-c.result:
		return res.data, res.err
	case <-deadline.C:
		rt.abortCall(c.txn)
		return nil, fmt.Errorf("%w (txn %d to %#x)", ErrCallTimeout, c.txn, server)
	case <-rt.done:
		return nil, ErrClosed
	}
}

// abortCall removes a call that its Call goroutine has given up on.
func (rt *RT) abortCall(txn uint32) {
	rt.mu.Lock()
	c, ok := rt.calls[txn]
	if ok {
		delete(rt.calls, txn)
		c.timer.Stop()
		rt.stats.CallsFailed++
	}
	rt.mu.Unlock()
}

// timeoutLocked computes the adaptive retransmission timer (Jacobson);
// rt.mu must be held.
func (rt *RT) timeoutLocked(server uint64) time.Duration {
	srtt, ok := rt.srtt[server]
	if !ok || srtt == 0 {
		return rt.cfg.BaseTimeout
	}
	to := srtt + 4*rt.rttvar[server]
	if min := rt.cfg.BaseTimeout / 4; to < min {
		to = min
	}
	if to > rt.cfg.MaxTimeout {
		to = rt.cfg.MaxTimeout
	}
	return to
}

// sendGroup transmits the packets selected by mask minus skip, paced
// by PacingGap, stamping each with the transmission-time timestamp.
// Each packet is shallow-copied before stamping so concurrent resends
// never race on a shared header.
func (rt *RT) sendGroup(route []viper.Segment, pkts []*Packet, mask, skip uint32) {
	if len(route) == 0 {
		return
	}
	first := true
	for i, p := range pkts {
		bit := uint32(1) << uint(i)
		if mask&bit == 0 || skip&bit != 0 {
			continue
		}
		if !first && rt.cfg.PacingGap > 0 {
			time.Sleep(rt.cfg.PacingGap)
		}
		first = false
		q := *p
		q.Timestamp = nowTimestamp()
		rt.car.Send(route, q.Encode())
	}
}

// onTimer is the client retransmission timer. Before the full-group
// ack it resends unacked data (bounded by MaxRetries with exponential
// backoff); after it, it only probes the server for the response.
func (rt *RT) onTimer(txn uint32) {
	rt.mu.Lock()
	c, ok := rt.calls[txn]
	if !ok || rt.closed {
		rt.mu.Unlock()
		return
	}
	if c.delivered {
		// Probe: the request is fully delivered, the handler is
		// (presumably) still running. Keep the cadence gentle and let
		// CallTimeout bound the wait.
		interval := c.timeout
		if interval < 50*time.Millisecond {
			interval = 50 * time.Millisecond
		}
		c.timer.Reset(interval)
		probe := *c.pkts[0]
		probe.Flags |= FlagProbe
		probe.Data = nil
		probe.Timestamp = nowTimestamp()
		route := c.route
		rt.mu.Unlock()
		rt.car.Send(route, probe.Encode())
		return
	}
	c.retries++
	c.clean = false
	if c.retries > rt.cfg.MaxRetries {
		delete(rt.calls, txn)
		rt.stats.CallsFailed++
		rt.mu.Unlock()
		c.finish(nil, fmt.Errorf("%w (txn %d to %#x after %d retries)",
			ErrCallFailed, c.txn, c.server, rt.cfg.MaxRetries))
		return
	}
	rt.stats.Retransmissions++
	backoff := c.timeout << uint(c.retries)
	if backoff > rt.cfg.MaxTimeout {
		backoff = rt.cfg.MaxTimeout
	}
	c.timer.Reset(backoff)
	route, pkts, acked := c.route, c.pkts, c.acked
	rt.mu.Unlock()
	rt.sendGroup(route, pkts, ^uint32(0), acked)
}

// handle dispatches one received packet; runs on the rx goroutine.
func (rt *RT) handle(p *Packet, ret []viper.Segment) {
	switch p.Kind {
	case KindRequest:
		if p.Server != rt.id {
			rt.mu.Lock()
			rt.stats.Misdelivered++
			rt.mu.Unlock()
			return
		}
		rt.handleRequest(p, ret)
	case KindAck:
		if p.Client != rt.id {
			rt.mu.Lock()
			rt.stats.Misdelivered++
			rt.mu.Unlock()
			return
		}
		rt.handleAck(p)
	case KindResponse:
		if p.Client != rt.id {
			rt.mu.Lock()
			rt.stats.Misdelivered++
			rt.mu.Unlock()
			return
		}
		rt.handleResponse(p)
	}
}

// --- server side ---

func (rt *RT) handleRequest(p *Packet, ret []viper.Segment) {
	key := groupKey{client: p.Client, txn: p.Txn}
	rt.mu.Lock()
	if e, ok := rt.cache[key]; ok {
		// Duplicate of a completed transaction (or a probe for one):
		// replay the cached response (§4's at-most-once behavior).
		rt.stats.DupRequests++
		pkts := e.pkts
		rt.mu.Unlock()
		rt.sendGroup(ret, pkts, ^uint32(0), 0)
		return
	}
	if p.Flags&FlagProbe != 0 {
		// Probe for an in-progress transaction: re-ack full receipt so
		// the client keeps waiting. Probes for unknown transactions are
		// ignored; the client's CallTimeout is the backstop.
		g, ok := rt.rxReqs[key]
		armed := ok && g.complete()
		rt.mu.Unlock()
		if armed {
			rt.sendAck(key, g.nPkts, g.mask, ret)
		}
		return
	}
	g, ok := rt.rxReqs[key]
	if !ok {
		if p.NPkts == 0 || p.NPkts > MaxGroupPackets || int(p.TotalLen) > maxGroupLen {
			rt.stats.ChecksumDrops++
			rt.mu.Unlock()
			return
		}
		g = &rtRxGroup{
			nPkts:    p.NPkts,
			totalLen: int(p.TotalLen),
			data:     make([]byte, p.TotalLen),
		}
		rt.rxReqs[key] = g
		cur := g
		time.AfterFunc(rt.cfg.GroupTimeout, func() {
			rt.mu.Lock()
			if got, ok := rt.rxReqs[key]; ok && got == cur && !got.complete() {
				delete(rt.rxReqs, key)
			}
			rt.mu.Unlock()
		})
	}
	g.ret = ret
	g.lastRx = time.Now()
	placeRT(g, p)
	if !g.complete() {
		if !g.ackArmed {
			g.ackArmed = true
			rt.armGapAck(key, g)
		}
		rt.mu.Unlock()
		return
	}
	if g.served {
		// Full duplicate after dispatch: re-ack so the client stays in
		// the probing state instead of retransmitting data.
		nPkts, mask := g.nPkts, g.mask
		rt.mu.Unlock()
		rt.sendAck(key, nPkts, mask, ret)
		return
	}
	g.served = true
	handler := rt.handler
	rt.stats.AcksSent++
	nPkts, mask := g.nPkts, g.mask
	if !rt.closed {
		rt.wg.Add(1)
		// data and ret are snapshotted under mu: handleRequest keeps
		// refreshing g.ret as duplicate packets arrive, so the handler
		// must not read the live fields off-lock.
		go rt.serve(key, g, g.data, g.ret, handler)
	}
	rt.mu.Unlock()
	// The full-group ack doubles as "received, response pending": the
	// client stops retransmitting data the moment it arrives.
	rt.sendAck(key, nPkts, mask, ret)
}

func placeRT(g *rtRxGroup, p *Packet) {
	bit := uint32(1) << p.PktIndex
	if g.mask&bit != 0 || p.PktIndex >= g.nPkts {
		return
	}
	g.mask |= bit
	chunk := ChunkSize(g.totalLen, int(g.nPkts))
	off := int(p.PktIndex) * chunk
	if off <= len(g.data) {
		copy(g.data[off:], p.Data)
	}
}

// armGapAck schedules the selective-ack probe for an incomplete group:
// once the group has gone quiet for GapAckDelay, the receiver tells
// the client which packets arrived so only the missing are resent
// (§4.3 selective retransmission).
func (rt *RT) armGapAck(key groupKey, g *rtRxGroup) {
	time.AfterFunc(rt.cfg.GapAckDelay, func() {
		rt.mu.Lock()
		cur, ok := rt.rxReqs[key]
		if !ok || cur != g || g.complete() || rt.closed {
			if ok && cur == g {
				g.ackArmed = false
			}
			rt.mu.Unlock()
			return
		}
		if quiet := time.Since(g.lastRx); quiet < rt.cfg.GapAckDelay {
			rt.armGapAck(key, g)
			rt.mu.Unlock()
			return
		}
		rt.stats.AcksSent++
		nPkts, mask, ret := g.nPkts, g.mask, g.ret
		rt.armGapAck(key, g) // keep probing while incomplete
		rt.mu.Unlock()
		rt.sendAck(key, nPkts, mask, ret)
	})
}

func (rt *RT) sendAck(key groupKey, nPkts uint8, mask uint32, ret []viper.Segment) {
	ack := &Packet{Header: Header{
		Client: key.client,
		Server: rt.id,
		Txn:    key.txn,
		Kind:   KindAck,
		NPkts:  nPkts,
		Mask:   mask,
	}}
	rt.sendGroup(ret, []*Packet{ack}, ^uint32(0), 0)
}

// serve runs the handler on its own goroutine and transmits (and
// caches) the response group.
func (rt *RT) serve(key groupKey, g *rtRxGroup, data []byte, ret0 []viper.Segment, handler RTHandler) {
	defer rt.wg.Done()
	var respData []byte
	if handler != nil {
		respData = handler(key.client, data, ret0)
	}
	chunks, err := Segment(respData, rt.cfg.MaxPacketData)
	if err != nil {
		return
	}
	var pkts []*Packet
	for i, ch := range chunks {
		pkts = append(pkts, &Packet{
			Header: Header{
				Client:   key.client,
				Server:   rt.id,
				Txn:      key.txn,
				Kind:     KindResponse,
				PktIndex: uint8(i),
				NPkts:    uint8(len(chunks)),
				TotalLen: uint32(len(respData)),
			},
			Data: ch,
		})
	}
	rt.mu.Lock()
	ret := g.ret // freshest return route seen for this transaction
	delete(rt.rxReqs, key)
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.cache[key] = &rtRespEntry{pkts: pkts, ret: ret}
	time.AfterFunc(rt.cfg.ResponseCacheTTL, func() {
		rt.mu.Lock()
		delete(rt.cache, key)
		rt.mu.Unlock()
	})
	rt.mu.Unlock()
	rt.sendGroup(ret, pkts, ^uint32(0), 0)
}

// --- client side ---

func (rt *RT) handleAck(p *Packet) {
	rt.mu.Lock()
	c, ok := rt.calls[p.Txn]
	if !ok {
		rt.mu.Unlock()
		return
	}
	c.acked |= p.Mask
	if c.acked&c.full == c.full {
		if !c.delivered {
			c.delivered = true
			// Switch the timer to the gentle probe cadence.
			interval := c.timeout
			if interval < 50*time.Millisecond {
				interval = 50 * time.Millisecond
			}
			c.timer.Reset(interval)
		}
		rt.mu.Unlock()
		return
	}
	// Selective retransmission: resend only what the receiver's mask
	// says is missing (§4.3).
	c.clean = false
	rt.stats.SelectiveResends++
	route, pkts, acked := c.route, c.pkts, c.acked
	c.timer.Reset(c.timeout)
	rt.mu.Unlock()
	rt.sendGroup(route, pkts, ^uint32(0), acked)
}

func (rt *RT) handleResponse(p *Packet) {
	rt.mu.Lock()
	c, ok := rt.calls[p.Txn]
	if !ok {
		rt.mu.Unlock()
		return // late duplicate response
	}
	if c.resp == nil {
		if p.NPkts == 0 || p.NPkts > MaxGroupPackets || int(p.TotalLen) > maxGroupLen {
			rt.mu.Unlock()
			return
		}
		c.resp = &rtRxGroup{
			nPkts:    p.NPkts,
			totalLen: int(p.TotalLen),
			data:     make([]byte, p.TotalLen),
		}
	}
	placeRT(c.resp, p)
	if !c.resp.complete() {
		c.timer.Reset(c.timeout)
		rt.mu.Unlock()
		return
	}
	delete(rt.calls, c.txn)
	c.timer.Stop()
	rt.stats.CallsCompleted++
	if c.clean {
		rt.recordRTTLocked(c.server, time.Since(c.sent))
	}
	data := c.resp.data
	rt.mu.Unlock()
	c.finish(data, nil)
}

// recordRTTLocked updates the Jacobson estimators; rt.mu must be held.
func (rt *RT) recordRTTLocked(server uint64, rtt time.Duration) {
	srtt, ok := rt.srtt[server]
	if !ok {
		rt.srtt[server] = rtt
		rt.rttvar[server] = rtt / 2
		return
	}
	diff := rtt - srtt
	if diff < 0 {
		diff = -diff
	}
	rt.rttvar[server] = (3*rt.rttvar[server] + diff) / 4
	rt.srtt[server] = (7*srtt + rtt) / 8
}
