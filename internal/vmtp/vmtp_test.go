package vmtp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/viper"
)

func TestWireRoundTrip(t *testing.T) {
	p := &Packet{
		Header: Header{
			Client: 0xDEADBEEFCAFE, Server: 0x1234, Txn: 42,
			Kind: KindResponse, PktIndex: 3, NPkts: 7, Flags: 1,
			Mask: 0b1011, TotalLen: 7000, Timestamp: 99999,
		},
		Data: []byte("payload bytes"),
	}
	b := p.Encode()
	if len(b) != HeaderLen+len(p.Data) {
		t.Fatalf("encoded %d bytes", len(b))
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != p.Header || !bytes.Equal(got.Data, p.Data) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestWireChecksumCatchesCorruption(t *testing.T) {
	p := &Packet{Header: Header{Client: 1, Server: 2, Txn: 3, Timestamp: 4}, Data: []byte("abcdef")}
	b := p.Encode()
	for i := 0; i < len(b); i++ {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0x10
		if _, err := Decode(mut); err != ErrChecksum {
			t.Fatalf("corruption at %d: err = %v", i, err)
		}
	}
	// Truncation (Sirpent's oversize handling) must also be caught.
	if _, err := Decode(b[:len(b)-2]); err != ErrChecksum {
		t.Fatalf("truncation err = %v", err)
	}
	if _, err := Decode(b[:10]); err != ErrShort {
		t.Fatalf("short err = %v", err)
	}
}

func TestPropertyWireRoundTrip(t *testing.T) {
	f := func(client, server uint64, txn uint32, kind, idx, n, flags uint8, mask, total uint32, ts uint32, data []byte) bool {
		p := &Packet{Header: Header{
			Client: client, Server: server, Txn: txn, Kind: Kind(kind % 3),
			PktIndex: idx, NPkts: n, Flags: flags, Mask: mask,
			TotalLen: total, Timestamp: clock.Timestamp(ts),
		}, Data: data}
		got, err := Decode(p.Encode())
		return err == nil && got.Header == p.Header && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentChunking(t *testing.T) {
	cases := []struct {
		len, maxData, wantN int
	}{
		{0, 1024, 1},
		{1, 1024, 1},
		{1024, 1024, 1},
		{1025, 1024, 2},
		{32 * 1024, 1024, 32},
	}
	for _, c := range cases {
		msg := make([]byte, c.len)
		for i := range msg {
			msg[i] = byte(i)
		}
		chunks, err := Segment(msg, c.maxData)
		if err != nil {
			t.Fatalf("len %d: %v", c.len, err)
		}
		if len(chunks) != c.wantN {
			t.Fatalf("len %d: %d chunks, want %d", c.len, len(chunks), c.wantN)
		}
		// Reassemble using the receiver's offset rule.
		out := make([]byte, c.len)
		chunk := ChunkSize(c.len, len(chunks))
		for i, ch := range chunks {
			copy(out[i*chunk:], ch)
		}
		if !bytes.Equal(out, msg) {
			t.Fatalf("len %d: offset rule broke reassembly", c.len)
		}
	}
	if _, err := Segment(make([]byte, 33*1024), 1024); err != ErrGroupTooBig {
		t.Fatalf("oversize err = %v", err)
	}
}

// fixture: two hosts joined by a router over p2p links, with VMTP
// endpoints and optional alternate path through a second router.
//
//	      R1
//	     /  \
//	hA--+    +--hB
//	     \  /
//	      R2
type fixture struct {
	eng      *sim.Engine
	hA, hB   *router.Host
	r1, r2   *router.Router
	client   *Endpoint
	server   *Endpoint
	l1a, l1b *netsim.P2PLink // hA-R1, R1-hB
	l2a, l2b *netsim.P2PLink // hA-R2, R2-hB
}

func newFixture(t testing.TB, ccfg, scfg Config) *fixture {
	t.Helper()
	f := &fixture{eng: sim.NewEngine(23)}
	f.hA = router.NewHost(f.eng, "hA")
	f.hB = router.NewHost(f.eng, "hB")
	f.r1 = router.New(f.eng, "R1", router.Config{})
	f.r2 = router.New(f.eng, "R2", router.Config{})

	attach := func(link *netsim.P2PLink, a netsim.Node, ap uint8, b netsim.Node, bp uint8) {
		pa, pb := link.Attach(a, ap, b, bp)
		switch n := a.(type) {
		case *router.Host:
			n.AttachPort(pa)
		case *router.Router:
			n.AttachPort(pa)
		}
		switch n := b.(type) {
		case *router.Host:
			n.AttachPort(pb)
		case *router.Router:
			n.AttachPort(pb)
		}
	}
	mk := func() *netsim.P2PLink { return netsim.NewP2PLink(f.eng, 10e6, 50*sim.Microsecond) }
	f.l1a, f.l1b, f.l2a, f.l2b = mk(), mk(), mk(), mk()
	attach(f.l1a, f.hA, 1, f.r1, 1)
	attach(f.l1b, f.r1, 2, f.hB, 1)
	attach(f.l2a, f.hA, 2, f.r2, 1)
	attach(f.l2b, f.r2, 2, f.hB, 2)

	ckA := clock.New(f.eng, 0, 0)
	ckB := clock.New(f.eng, 0, 0)
	f.client = NewEndpoint(f.eng, f.hA, ckA, 0xC11E47, 1, ccfg)
	f.server = NewEndpoint(f.eng, f.hB, ckB, 0x5E12E12, 1, scfg)
	return f
}

// routes returns the two alternate routes hA -> hB (via R1, via R2),
// terminating at the server's host endpoint 1.
func (f *fixture) routes() [][]viper.Segment {
	via := func(iface uint8) []viper.Segment {
		return []viper.Segment{
			{Port: iface, Flags: viper.FlagVNT},
			{Port: 2, Flags: viper.FlagVNT},
			{Port: 1}, // host endpoint 1 (the server's)
		}
	}
	return [][]viper.Segment{via(1), via(2)}
}

func TestCallResponse(t *testing.T) {
	f := newFixture(t, Config{}, Config{})
	f.server.SetHandler(func(from uint64, data []byte) []byte {
		if from != f.client.ID() {
			t.Errorf("handler from = %x", from)
		}
		return append([]byte("echo:"), data...)
	})
	var got []byte
	f.eng.Schedule(0, func() {
		f.client.Call(f.server.ID(), f.routes(), []byte("ping"), func(resp []byte, err error) {
			if err != nil {
				t.Errorf("Call: %v", err)
				return
			}
			got = resp
		})
	})
	f.eng.Run()
	if !bytes.Equal(got, []byte("echo:ping")) {
		t.Fatalf("resp = %q", got)
	}
	if f.client.Stats.CallsCompleted != 1 {
		t.Fatalf("CallsCompleted = %d", f.client.Stats.CallsCompleted)
	}
	if f.client.RTT(f.server.ID()) == 0 {
		t.Fatal("no RTT estimate recorded")
	}
}

func TestLargeMessagesBothWays(t *testing.T) {
	f := newFixture(t, Config{}, Config{})
	req := make([]byte, 10*1024)
	for i := range req {
		req[i] = byte(i * 3)
	}
	f.server.SetHandler(func(from uint64, data []byte) []byte {
		if !bytes.Equal(data, req) {
			t.Error("request corrupted in packet-group transfer")
		}
		resp := make([]byte, 20*1024)
		for i := range resp {
			resp[i] = byte(i * 5)
		}
		return resp
	})
	var got []byte
	f.eng.Schedule(0, func() {
		f.client.Call(f.server.ID(), f.routes(), req, func(resp []byte, err error) {
			if err != nil {
				t.Errorf("Call: %v", err)
				return
			}
			got = resp
		})
	})
	f.eng.Run()
	if len(got) != 20*1024 {
		t.Fatalf("resp len = %d", len(got))
	}
	for i := range got {
		if got[i] != byte(i*5) {
			t.Fatalf("resp corrupted at %d", i)
		}
	}
}

func TestSelectiveRetransmissionOnLoss(t *testing.T) {
	f := newFixture(t, Config{BaseTimeout: 20 * sim.Millisecond, GapAckDelay: 2 * sim.Millisecond},
		Config{GapAckDelay: 2 * sim.Millisecond})
	// 20% loss on the forward path via R1.
	f.l1a.AB.SetLossRate(0.2)
	f.l1b.AB.SetLossRate(0.2)
	f.server.SetHandler(func(from uint64, data []byte) []byte { return []byte("ok") })
	done := 0
	f.eng.Schedule(0, func() {
		f.client.Call(f.server.ID(), f.routes(), make([]byte, 16*1024), func(resp []byte, err error) {
			if err != nil {
				t.Errorf("Call: %v", err)
				return
			}
			done++
		})
	})
	f.eng.Run()
	if done != 1 {
		t.Fatal("call never completed despite retransmission")
	}
	st := f.client.Stats
	if st.SelectiveResends == 0 && st.Retransmissions == 0 {
		t.Fatal("no retransmissions despite 20% loss on a 16-packet group")
	}
}

func TestRouteFailover(t *testing.T) {
	f := newFixture(t, Config{BaseTimeout: 10 * sim.Millisecond, MaxRetries: 2}, Config{})
	f.server.SetHandler(func(from uint64, data []byte) []byte { return []byte("alive") })
	// Kill the primary path entirely.
	f.l1a.SetDown(true)
	var got []byte
	var doneAt sim.Time
	f.eng.Schedule(0, func() {
		f.client.Call(f.server.ID(), f.routes(), []byte("hello?"), func(resp []byte, err error) {
			if err != nil {
				t.Errorf("Call: %v", err)
				return
			}
			got = resp
			doneAt = f.eng.Now()
		})
	})
	f.eng.Run()
	if !bytes.Equal(got, []byte("alive")) {
		t.Fatalf("resp = %q", got)
	}
	if f.client.Stats.RouteFailovers != 1 {
		t.Fatalf("RouteFailovers = %d, want 1", f.client.Stats.RouteFailovers)
	}
	// Failover cost: MaxRetries timeouts then success on route 2.
	if doneAt < 20*sim.Millisecond {
		t.Fatalf("done at %v, too fast for 2 timeouts", doneAt)
	}
}

func TestRouteAdvisorSkipsDeadRoute(t *testing.T) {
	f := newFixture(t, Config{BaseTimeout: 10 * sim.Millisecond, MaxRetries: 2}, Config{})
	f.server.SetHandler(func(from uint64, data []byte) []byte { return []byte("ok") })
	f.l1a.SetDown(true)
	routes := f.routes()
	// The advisor knows route 0 (via interface 1) is dead.
	f.client.SetRouteAdvisor(func(r []viper.Segment) bool {
		return len(r) > 0 && r[0].Port != 1
	})
	var doneAt sim.Time = -1
	f.eng.Schedule(0, func() {
		f.client.Call(f.server.ID(), routes, []byte("x"), func(resp []byte, err error) {
			if err != nil {
				t.Errorf("Call: %v", err)
				return
			}
			doneAt = f.eng.Now()
		})
	})
	f.eng.Run()
	if doneAt < 0 {
		t.Fatal("call failed")
	}
	// No timeout was needed: the advisor skipped straight to route 2.
	if doneAt >= 10*sim.Millisecond {
		t.Fatalf("done at %v; advisor did not avoid the timeout", doneAt)
	}
	if f.client.Stats.AdvisorySkips != 1 {
		t.Fatalf("AdvisorySkips = %d", f.client.Stats.AdvisorySkips)
	}
	if f.client.Stats.RouteFailovers != 0 {
		t.Fatalf("RouteFailovers = %d, want 0 (skip, not failover)", f.client.Stats.RouteFailovers)
	}
}

func TestRouteAdvisorKeepsLastRoute(t *testing.T) {
	// If the advisor rejects everything, the last route is still tried
	// (better to attempt than to give up without sending).
	f := newFixture(t, Config{BaseTimeout: 5 * sim.Millisecond, MaxRetries: 1}, Config{})
	f.server.SetHandler(func(from uint64, data []byte) []byte { return []byte("ok") })
	f.client.SetRouteAdvisor(func(r []viper.Segment) bool { return false })
	ok := false
	f.eng.Schedule(0, func() {
		f.client.Call(f.server.ID(), f.routes(), []byte("x"), func(resp []byte, err error) {
			ok = err == nil
		})
	})
	f.eng.Run()
	if !ok {
		t.Fatal("call failed despite a working last route")
	}
}

func TestAllRoutesFailed(t *testing.T) {
	f := newFixture(t, Config{BaseTimeout: 5 * sim.Millisecond, MaxRetries: 1}, Config{})
	f.l1a.SetDown(true)
	f.l2a.SetDown(true)
	var gotErr error
	f.eng.Schedule(0, func() {
		f.client.Call(f.server.ID(), f.routes(), []byte("x"), func(resp []byte, err error) { gotErr = err })
	})
	f.eng.Run()
	if gotErr == nil {
		t.Fatal("expected failure")
	}
	if f.client.Stats.CallsFailed != 1 {
		t.Fatalf("CallsFailed = %d", f.client.Stats.CallsFailed)
	}
}

func TestDuplicateRequestServedFromCache(t *testing.T) {
	f := newFixture(t, Config{BaseTimeout: 10 * sim.Millisecond}, Config{})
	handled := 0
	f.server.SetHandler(func(from uint64, data []byte) []byte {
		handled++
		return []byte("once")
	})
	// Lose ALL reverse traffic for a while so the response dies and the
	// client retransmits the request.
	f.l1b.BA.SetLossRate(1.0)
	f.l1a.BA.SetLossRate(1.0)
	f.eng.Schedule(25*sim.Millisecond, func() {
		f.l1b.BA.SetLossRate(0)
		f.l1a.BA.SetLossRate(0)
	})
	done := 0
	f.eng.Schedule(0, func() {
		f.client.Call(f.server.ID(), f.routes()[:1], []byte("q"), func(resp []byte, err error) {
			if err != nil {
				t.Errorf("Call: %v", err)
			}
			done++
		})
	})
	f.eng.Run()
	if done != 1 {
		t.Fatal("call did not complete")
	}
	if handled != 1 {
		t.Fatalf("handler ran %d times; at-most-once broken", handled)
	}
	if f.server.Stats.DupRequests == 0 {
		t.Fatal("no duplicate suppression observed")
	}
}

func TestStaleTimestampDiscarded(t *testing.T) {
	f := newFixture(t, Config{}, Config{MPL: 2 * sim.Second})
	f.server.SetHandler(func(from uint64, data []byte) []byte { return []byte("no") })
	// Run the clock forward so "old" timestamps are representable.
	f.eng.RunUntil(10 * sim.Second)
	old := &Packet{Header: Header{
		Client: f.client.ID(), Server: f.server.ID(), Txn: 7,
		Kind: KindRequest, NPkts: 1,
		Timestamp: clock.Timestamp(1000), // t=1s, now 10s: 9s old > 2s MPL
	}, Data: []byte("ancient")}
	f.server.deliver(&router.Delivery{Data: old.Encode(), Pkt: &viper.Packet{}})
	if f.server.Stats.StaleDrops != 1 {
		t.Fatalf("StaleDrops = %d", f.server.Stats.StaleDrops)
	}
}

func TestMisdeliveryDetected(t *testing.T) {
	f := newFixture(t, Config{}, Config{})
	wrong := &Packet{Header: Header{
		Client: 1, Server: 0xBAD, Txn: 1, Kind: KindRequest, NPkts: 1,
		Timestamp: f.server.clk.Timestamp(),
	}}
	f.server.deliver(&router.Delivery{Data: wrong.Encode(), Pkt: &viper.Packet{}})
	if f.server.Stats.Misdelivered != 1 {
		t.Fatalf("Misdelivered = %d", f.server.Stats.Misdelivered)
	}
}

func TestCorruptedPacketDiscarded(t *testing.T) {
	f := newFixture(t, Config{}, Config{})
	p := &Packet{Header: Header{Client: 1, Server: f.server.ID(), NPkts: 1, Timestamp: 5}}
	b := p.Encode()
	b[5] ^= 0xFF
	f.server.deliver(&router.Delivery{Data: b, Pkt: &viper.Packet{}})
	if f.server.Stats.ChecksumDrops != 1 {
		t.Fatalf("ChecksumDrops = %d", f.server.Stats.ChecksumDrops)
	}
}

func TestPacingSpacesPackets(t *testing.T) {
	f := newFixture(t, Config{PacingGap: 3 * sim.Millisecond}, Config{GapAckDelay: 50 * sim.Millisecond})
	var arrivals []sim.Time
	f.server.SetHandler(func(from uint64, data []byte) []byte { return nil })
	// Spy on host deliveries via a second endpoint-level wrapper is
	// overkill; instead check the link's transmission count over time.
	f.eng.Schedule(0, func() {
		f.client.Call(f.server.ID(), f.routes()[:1], make([]byte, 4*1024), func([]byte, error) {})
	})
	// Sample link business over time (offset half a millisecond so the
	// samples land inside the ~0.87ms transmission windows).
	for i := 500 * sim.Microsecond; i < 20*sim.Millisecond; i += sim.Millisecond {
		i := i
		f.eng.At(i, func() {
			if f.l1a.AB.Current() != nil {
				arrivals = append(arrivals, i)
			}
		})
	}
	f.eng.Run()
	// 4 packets at 3ms spacing: the link must be active across at least
	// 9ms of the window, not all at once. (A 1KB packet takes ~0.85ms.)
	if len(arrivals) < 3 {
		t.Fatalf("link busy at %d sample points, want spread transmissions: %v", len(arrivals), arrivals)
	}
	span := arrivals[len(arrivals)-1] - arrivals[0]
	if span < 8*sim.Millisecond {
		t.Fatalf("transmissions span %v, want paced over >=8ms", span)
	}
}

func TestErrNoRoutes(t *testing.T) {
	f := newFixture(t, Config{}, Config{})
	if err := f.client.Call(1, nil, nil, nil); err != ErrNoRoutes {
		t.Fatalf("err = %v", err)
	}
}

func TestKindStringer(t *testing.T) {
	if KindRequest.String() != "request" || KindResponse.String() != "response" || KindAck.String() != "ack" || Kind(9).String() != "?" {
		t.Fatal("Kind.String broken")
	}
}
