package vmtp

import (
	"errors"
	"fmt"

	"repro/internal/clock"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/viper"
)

// Config tunes an endpoint.
type Config struct {
	// MaxPacketData bounds the data per packet; default 1024 (§5's
	// "roughly 1 kilobyte transport packet").
	MaxPacketData int
	// PacingGap is the inter-packet gap within a group — VMTP's
	// rate-based flow control "between packets within a packet group to
	// avoid overruns" (§4.3). Zero sends back to back.
	PacingGap sim.Time
	// BaseTimeout seeds the retransmission timer before an RTT estimate
	// exists. Default 50ms.
	BaseTimeout sim.Time
	// MaxRetries per route before failing over to the next alternate
	// route. Default 3.
	MaxRetries int
	// MPL is the maximum packet lifetime the endpoint accepts; older
	// packets are discarded on arrival (§4.2). Default 30s.
	MPL sim.Time
	// FutureSlack tolerates receiver clocks behind senders. Default 5s.
	FutureSlack sim.Time
	// GapAckDelay is how long a receiver waits on an incomplete group
	// before sending a selective ack of what it has (§4.3). Default 5ms.
	GapAckDelay sim.Time
	// ResponseCacheTTL is the duplicate-suppression window. Default 5s.
	ResponseCacheTTL sim.Time
	// GroupTimeout discards an incomplete request group (and stops its
	// selective acks) if the missing packets never arrive. Default 2s.
	GroupTimeout sim.Time
}

func (c Config) withDefaults() Config {
	if c.MaxPacketData == 0 {
		c.MaxPacketData = MaxPacketData
	}
	if c.BaseTimeout == 0 {
		c.BaseTimeout = 50 * sim.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MPL == 0 {
		c.MPL = 30 * sim.Second
	}
	if c.FutureSlack == 0 {
		c.FutureSlack = 5 * sim.Second
	}
	if c.GapAckDelay == 0 {
		c.GapAckDelay = 5 * sim.Millisecond
	}
	if c.ResponseCacheTTL == 0 {
		c.ResponseCacheTTL = 5 * sim.Second
	}
	if c.GroupTimeout == 0 {
		c.GroupTimeout = 2 * sim.Second
	}
	return c
}

// Stats counts transport events.
type Stats struct {
	CallsStarted     uint64
	CallsCompleted   uint64
	CallsFailed      uint64
	Retransmissions  uint64
	SelectiveResends uint64 // packets resent due to receiver masks
	RouteFailovers   uint64
	AdvisorySkips    uint64 // routes skipped on directory advice (§6.3)
	StaleDrops       uint64 // packets older than MPL (§4.2)
	ChecksumDrops    uint64 // corrupted or truncated packets (§4.1)
	Misdelivered     uint64 // entity identifier mismatch (§4.1)
	DupRequests      uint64 // answered from the response cache
	AcksSent         uint64
	QueueDrops       uint64 // RT receive-queue overflow (real-time endpoints only)
}

// Handler serves requests: it receives the caller's entity identifier
// and request data and returns the response data.
type Handler func(from uint64, data []byte) []byte

// Errors.
var (
	ErrAllRoutesFailed = errors.New("vmtp: transaction failed on every route")
	ErrNoRoutes        = errors.New("vmtp: no routes supplied")
)

// Endpoint is a VMTP entity bound to one Sirpent host endpoint. The
// 64-bit entity identifier is "unique independent of the (inter)network
// layer addressing" (§4.1), which is what lets VMTP survive misdelivery,
// migration and multi-homing.
type Endpoint struct {
	eng  *sim.Engine
	host *router.Host
	clk  *clock.Clock
	id   uint64
	hep  uint8 // host endpoint (intra-host port)
	cfg  Config

	nextTxn uint32
	calls   map[uint32]*call

	handler   Handler
	advisor   func(route []viper.Segment) bool
	rxReqs    map[groupKey]*rxGroup
	respCache map[groupKey]*respEntry

	srtt, rttvar map[uint64]sim.Time

	Stats Stats
}

type groupKey struct {
	client uint64
	txn    uint32
}

// rxGroup reassembles one packet group.
type rxGroup struct {
	nPkts    uint8
	totalLen int
	mask     uint32
	data     []byte
	ret      []viper.Segment // freshest return route
	prio     viper.Priority
	ackTimer bool
	done     bool
	lastRx   sim.Time // most recent packet arrival (gap detection)
}

func (g *rxGroup) complete() bool {
	return g.mask == fullMask(g.nPkts)
}

func fullMask(n uint8) uint32 {
	if n >= 32 {
		return ^uint32(0)
	}
	return (uint32(1) << n) - 1
}

type respEntry struct {
	pkts    []*Packet
	expires sim.Time
}

// call is one outstanding client transaction.
type call struct {
	txn      uint32
	server   uint64
	routes   [][]viper.Segment
	routeIdx int
	reqPkts  []*Packet
	acked    uint32
	resp     *rxGroup
	done     func([]byte, error)
	retries  int
	timer    sim.EventID
	hasTimer bool
	started  sim.Time
	sendTime sim.Time // start of the current attempt (for RTT)
	clean    bool     // no retransmissions: RTT sample is valid (Karn)
}

// NewEndpoint binds a VMTP entity to a host endpoint.
func NewEndpoint(eng *sim.Engine, h *router.Host, clk *clock.Clock, id uint64, hostEndpoint uint8, cfg Config) *Endpoint {
	ep := &Endpoint{
		eng:       eng,
		host:      h,
		clk:       clk,
		id:        id,
		hep:       hostEndpoint,
		cfg:       cfg.withDefaults(),
		calls:     make(map[uint32]*call),
		rxReqs:    make(map[groupKey]*rxGroup),
		respCache: make(map[groupKey]*respEntry),
		srtt:      make(map[uint64]sim.Time),
		rttvar:    make(map[uint64]sim.Time),
	}
	h.Handle(hostEndpoint, ep.deliver)
	return ep
}

// ID returns the entity identifier.
func (ep *Endpoint) ID() uint64 { return ep.id }

// SetHandler installs the request handler (server role).
func (ep *Endpoint) SetHandler(h Handler) { ep.handler = h }

// SetRouteAdvisor installs a route-health oracle, typically backed by
// directory advisories (§6.3: "The clients benefit from these routing
// updates by periodically requesting route advisories from the routing
// servers"). Before transmitting on a route, the endpoint asks the
// advisor; a false answer skips straight to the next alternate without
// burning retransmission timeouts.
func (ep *Endpoint) SetRouteAdvisor(fn func(route []viper.Segment) bool) { ep.advisor = fn }

// RTT returns the smoothed round-trip estimate toward a server entity,
// or 0 if none yet.
func (ep *Endpoint) RTT(server uint64) sim.Time { return ep.srtt[server] }

// Call starts a transaction to a server entity over the given alternate
// source routes (primary first), invoking done with the response or an
// error. Each route must be a full host route (sender directive first).
func (ep *Endpoint) Call(server uint64, routes [][]viper.Segment, data []byte, done func([]byte, error)) error {
	if len(routes) == 0 {
		return ErrNoRoutes
	}
	chunks, err := Segment(data, ep.cfg.MaxPacketData)
	if err != nil {
		return err
	}
	ep.nextTxn++
	c := &call{
		txn:     ep.nextTxn,
		server:  server,
		routes:  routes,
		done:    done,
		started: ep.eng.Now(),
		clean:   true,
	}
	for i, ch := range chunks {
		c.reqPkts = append(c.reqPkts, &Packet{
			Header: Header{
				Client:   ep.id,
				Server:   server,
				Txn:      c.txn,
				Kind:     KindRequest,
				PktIndex: uint8(i),
				NPkts:    uint8(len(chunks)),
				TotalLen: uint32(len(data)),
			},
			Data: ch,
		})
	}
	ep.calls[c.txn] = c
	ep.Stats.CallsStarted++
	ep.sendRequest(c, ^uint32(0))
	return nil
}

// sendRequest transmits the request packets selected by mask (bit i =
// packet i), paced by PacingGap, then arms the retransmission timer.
// Routes the advisor reports unhealthy are skipped without waiting for
// a timeout.
func (ep *Endpoint) sendRequest(c *call, mask uint32) {
	if ep.advisor != nil {
		for c.routeIdx+1 < len(c.routes) && !ep.advisor(c.routes[c.routeIdx]) {
			c.routeIdx++
			c.retries = 0
			c.acked = 0
			mask = ^uint32(0)
			ep.Stats.AdvisorySkips++
		}
	}
	c.sendTime = ep.eng.Now()
	route := c.routes[c.routeIdx]
	gap := sim.Time(0)
	for i, p := range c.reqPkts {
		if mask&(1<<uint(i)) == 0 || c.acked&(1<<uint(i)) != 0 {
			continue
		}
		p := p
		ep.eng.Schedule(gap, func() {
			p.Timestamp = ep.clk.Timestamp()
			ep.host.SendFrom(ep.hep, route, p.Encode())
		})
		gap += ep.cfg.PacingGap
	}
	ep.armTimer(c)
}

func (ep *Endpoint) armTimer(c *call) {
	if c.hasTimer {
		ep.eng.Cancel(c.timer)
	}
	c.timer = ep.eng.Schedule(ep.timeout(c.server), func() { ep.onTimeout(c) })
	c.hasTimer = true
}

// timeout computes the adaptive retransmission timer (Jacobson).
func (ep *Endpoint) timeout(server uint64) sim.Time {
	srtt, ok := ep.srtt[server]
	if !ok || srtt == 0 {
		return ep.cfg.BaseTimeout
	}
	to := srtt + 4*ep.rttvar[server]
	if to < ep.cfg.BaseTimeout/4 {
		to = ep.cfg.BaseTimeout / 4
	}
	return to
}

func (ep *Endpoint) onTimeout(c *call) {
	c.hasTimer = false
	if _, live := ep.calls[c.txn]; !live {
		return
	}
	c.retries++
	c.clean = false
	if c.retries > ep.cfg.MaxRetries {
		// Fail over to the next alternate route (§6.3: the client
		// "switches between these routes based on the performance of
		// the different routes").
		if c.routeIdx+1 < len(c.routes) {
			c.routeIdx++
			c.retries = 0
			c.acked = 0
			ep.Stats.RouteFailovers++
			ep.sendRequest(c, ^uint32(0))
			return
		}
		delete(ep.calls, c.txn)
		ep.Stats.CallsFailed++
		if c.done != nil {
			c.done(nil, fmt.Errorf("%w (txn %d)", ErrAllRoutesFailed, c.txn))
		}
		return
	}
	ep.Stats.Retransmissions++
	ep.sendRequest(c, ^uint32(0))
}

// Deliver injects a delivery as if it had arrived from the host's
// Sirpent layer; experiment harnesses use it to present crafted packets
// (stale timestamps, corrupted bytes, misdirected entities).
func (ep *Endpoint) Deliver(d *router.Delivery) { ep.deliver(d) }

// deliver is the host-endpoint entry: parse, validate age and identity,
// and dispatch.
func (ep *Endpoint) deliver(d *router.Delivery) {
	p, err := Decode(d.Data)
	if err != nil {
		// Corrupted en route (Sirpent has no network checksum) or
		// truncated by an undersized hop (§2): the transport discards.
		ep.Stats.ChecksumDrops++
		return
	}
	// Maximum packet lifetime (§4.2): reject packets whose creation
	// timestamp is too old (or absurdly far in the future).
	if p.Timestamp != clock.InvalidTimestamp {
		age := clock.Age(ep.clk.Timestamp(), p.Timestamp)
		if age > int64(ep.cfg.MPL/sim.Millisecond) || age < -int64(ep.cfg.FutureSlack/sim.Millisecond) {
			ep.Stats.StaleDrops++
			return
		}
	}
	switch p.Kind {
	case KindRequest:
		if p.Server != ep.id {
			ep.Stats.Misdelivered++
			return
		}
		ep.handleRequest(p, d)
	case KindResponse, KindAck:
		if p.Client != ep.id {
			ep.Stats.Misdelivered++
			return
		}
		if p.Kind == KindAck {
			ep.handleAck(p)
		} else {
			ep.handleResponse(p, d)
		}
	}
}

// --- server side ---

func (ep *Endpoint) handleRequest(p *Packet, d *router.Delivery) {
	key := groupKey{client: p.Client, txn: p.Txn}
	// Duplicate transaction: replay the cached response (§4's
	// transactional at-most-once behavior).
	if e, ok := ep.respCache[key]; ok && ep.eng.Now() < e.expires {
		ep.Stats.DupRequests++
		ep.sendPackets(e.pkts, d.ReturnRoute)
		return
	}
	g, ok := ep.rxReqs[key]
	if !ok {
		g = &rxGroup{
			nPkts:    p.NPkts,
			totalLen: int(p.TotalLen),
			data:     make([]byte, p.TotalLen),
			prio:     prioOf(d),
		}
		ep.rxReqs[key] = g
		ep.eng.Schedule(ep.cfg.GroupTimeout, func() {
			if cur, ok := ep.rxReqs[key]; ok && cur == g {
				delete(ep.rxReqs, key)
			}
		})
	}
	g.ret = d.ReturnRoute
	g.lastRx = ep.eng.Now()
	ep.placePacket(g, p)
	if g.complete() {
		delete(ep.rxReqs, key)
		ep.serve(key, g)
		return
	}
	// Incomplete: arm the gap-detection selective ack (§4.3).
	if !g.ackTimer {
		g.ackTimer = true
		ep.eng.Schedule(ep.cfg.GapAckDelay, func() { ep.gapAck(key, g) })
	}
}

func prioOf(d *router.Delivery) viper.Priority {
	if len(d.Pkt.Trailer) > 0 {
		return d.Pkt.Trailer[len(d.Pkt.Trailer)-1].Priority
	}
	return 0
}

func (ep *Endpoint) placePacket(g *rxGroup, p *Packet) {
	bit := uint32(1) << p.PktIndex
	if g.mask&bit != 0 {
		return
	}
	g.mask |= bit
	chunk := ChunkSize(g.totalLen, int(g.nPkts))
	off := int(p.PktIndex) * chunk
	if off <= len(g.data) {
		copy(g.data[off:], p.Data)
	}
}

// gapAck tells the client which request packets arrived, so it resends
// only the missing ones — selective retransmission (§4.3).
func (ep *Endpoint) gapAck(key groupKey, g *rxGroup) {
	g.ackTimer = false
	if g.done || g.complete() {
		return
	}
	if cur, ok := ep.rxReqs[key]; !ok || cur != g {
		return
	}
	// Only ack once the group has actually gone quiet — an ack while
	// packets are still streaming in would trigger pointless resends.
	if quiet := ep.eng.Now() - g.lastRx; quiet < ep.cfg.GapAckDelay {
		g.ackTimer = true
		ep.eng.Schedule(ep.cfg.GapAckDelay-quiet, func() { ep.gapAck(key, g) })
		return
	}
	ack := &Packet{Header: Header{
		Client:    key.client,
		Server:    ep.id,
		Txn:       key.txn,
		Kind:      KindAck,
		NPkts:     g.nPkts,
		Mask:      g.mask,
		Timestamp: ep.clk.Timestamp(),
	}}
	ep.Stats.AcksSent++
	ep.sendPackets([]*Packet{ack}, g.ret)
	// Re-arm while still incomplete.
	g.ackTimer = true
	ep.eng.Schedule(4*ep.cfg.GapAckDelay, func() { ep.gapAck(key, g) })
}

func (ep *Endpoint) serve(key groupKey, g *rxGroup) {
	g.done = true
	if ep.handler == nil {
		return
	}
	respData := ep.handler(key.client, g.data)
	chunks, err := Segment(respData, ep.cfg.MaxPacketData)
	if err != nil {
		return
	}
	var pkts []*Packet
	for i, ch := range chunks {
		pkts = append(pkts, &Packet{
			Header: Header{
				Client:   key.client,
				Server:   ep.id,
				Txn:      key.txn,
				Kind:     KindResponse,
				PktIndex: uint8(i),
				NPkts:    uint8(len(chunks)),
				TotalLen: uint32(len(respData)),
			},
			Data: ch,
		})
	}
	ep.respCache[key] = &respEntry{pkts: pkts, expires: ep.eng.Now() + ep.cfg.ResponseCacheTTL}
	ep.eng.Schedule(ep.cfg.ResponseCacheTTL, func() {
		if e, ok := ep.respCache[key]; ok && ep.eng.Now() >= e.expires {
			delete(ep.respCache, key)
		}
	})
	ep.sendPackets(pkts, g.ret)
}

// sendPackets transmits a group along a route with pacing, restamping
// timestamps at transmission time.
func (ep *Endpoint) sendPackets(pkts []*Packet, route []viper.Segment) {
	if len(route) == 0 {
		return
	}
	gap := sim.Time(0)
	for _, p := range pkts {
		p := p
		ep.eng.Schedule(gap, func() {
			p.Timestamp = ep.clk.Timestamp()
			ep.host.SendFrom(ep.hep, route, p.Encode())
		})
		gap += ep.cfg.PacingGap
	}
}

// --- client side ---

func (ep *Endpoint) handleAck(p *Packet) {
	c, ok := ep.calls[p.Txn]
	if !ok {
		return
	}
	c.acked |= p.Mask
	missing := fullMask(uint8(len(c.reqPkts))) &^ c.acked
	if missing == 0 {
		return // all received; response should follow
	}
	c.clean = false
	ep.Stats.SelectiveResends++
	ep.sendRequest(c, missing)
}

func (ep *Endpoint) handleResponse(p *Packet, d *router.Delivery) {
	c, ok := ep.calls[p.Txn]
	if !ok {
		return // late duplicate response
	}
	if c.resp == nil {
		c.resp = &rxGroup{
			nPkts:    p.NPkts,
			totalLen: int(p.TotalLen),
			data:     make([]byte, p.TotalLen),
		}
	}
	ep.placePacket(c.resp, p)
	if !c.resp.complete() {
		ep.armTimer(c) // keep waiting for the rest of the group
		return
	}
	if c.hasTimer {
		ep.eng.Cancel(c.timer)
		c.hasTimer = false
	}
	delete(ep.calls, c.txn)
	ep.Stats.CallsCompleted++
	if c.clean {
		ep.recordRTT(c.server, ep.eng.Now()-c.sendTime)
	}
	if c.done != nil {
		c.done(c.resp.data, nil)
	}
}

func (ep *Endpoint) recordRTT(server uint64, rtt sim.Time) {
	srtt, ok := ep.srtt[server]
	if !ok {
		ep.srtt[server] = rtt
		ep.rttvar[server] = rtt / 2
		return
	}
	diff := rtt - srtt
	if diff < 0 {
		diff = -diff
	}
	ep.rttvar[server] = (3*ep.rttvar[server] + diff) / 4
	ep.srtt[server] = (7*srtt + rtt) / 8
}
