package main

import (
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/ledger"
	"repro/internal/stats"
)

// ledgerDeadline bounds how long one livenet billing run may take to
// quiesce.
const ledgerDeadline = 10 * time.Second

// runLedger replays the conformance harness's seeded topologies with
// every router token-guarded on every port, runs the identical
// token-authorized workload through both substrates, and prints the
// per-account billing table from each side. It exits non-zero if a
// ledger fails reconciliation against its substrate's TokenAuthorized
// counter, or the two substrates bill differently — attaching the
// flight recorders as evidence.
func runLedger(seedList string) error {
	seeds, err := parseSeeds(seedList)
	if err != nil {
		return err
	}
	divergent := 0
	for _, seed := range seeds {
		sc := check.Generate(seed)
		net := check.BuildNetsimTokened(sc)
		routes, err := check.FlowRoutesAccounted(net, sc)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		simFR := ledger.NewFlightRecorder(0)
		net.SetFlightRecorder(simFR)
		check.RunNetsim(net, sc, routes)
		simLed := check.CollectNetsimLedger(net)
		simCtrs := check.NetsimRouterCounters(net, sc)
		_, liveCtrs, liveLed, liveFR := check.RunLivenetLedgered(sc, routes, ledgerDeadline)

		fmt.Printf("== seed %d: %d routers, %d hosts, %d flows, all ports guarded ==\n",
			seed, sc.NRouters, len(sc.HostRouter), len(sc.Flows))
		printLedgerTable("netsim", simLed, simCtrs)
		printLedgerTable("livenet", liveLed, liveCtrs)

		var problems []string
		problems = append(problems, ledger.Reconcile("netsim", simLed, simCtrs)...)
		problems = append(problems, ledger.Reconcile("livenet", liveLed, liveCtrs)...)
		for _, p := range check.DiffLedgers(simLed, liveLed) {
			problems = append(problems, "ledger diverges: "+p)
		}
		if len(problems) == 0 {
			fmt.Println("ledgers reconcile and agree across substrates")
		} else {
			divergent++
			for _, p := range problems {
				fmt.Println("PROBLEM:", p)
			}
			fmt.Printf("netsim flight recorder:\n%slivenet flight recorder:\n%s",
				simFR.Format(), liveFR.Format())
		}
		fmt.Println()
	}
	if divergent > 0 {
		return fmt.Errorf("%d seeds fail billing cross-check", divergent)
	}
	return nil
}

// printLedgerTable renders one substrate's per-account billing table
// with its reconciliation anchor.
func printLedgerTable(label string, l *ledger.Ledger, c stats.Counters) {
	snap := l.Snapshot()
	fmt.Printf("%s billing (token-authorized=%d):\n", label, c.TokenAuthorized)
	fmt.Printf("  %-8s %10s %12s %8s  %s\n", "account", "packets", "bytes", "denials", "routers")
	for _, row := range snap.Accounts {
		fmt.Printf("  %-8d %10d %12d %8d  %d\n",
			row.Account, row.Packets, row.Bytes, row.Denials, len(row.Routers))
	}
}
