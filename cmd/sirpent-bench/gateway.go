package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/check"
	"repro/internal/daemon"
	"repro/internal/gateway"
)

// Gateway benchmark: the end-to-end SOCKS relay path (DESIGN.md §13)
// measured as an application would see it — a hash-verified echo
// transfer through ingress → token-guarded chain → egress, swept over
// chain lengths. Alongside throughput it records the relays' group
// round-trip distribution and retransmission counters, and asserts
// the ledger reconciles after each run (a benchmark whose billing is
// wrong measures the wrong system).

type gatewayBenchResult struct {
	Hops            int     `json:"hops"`
	BytesEachWay    int64   `json:"bytes_each_way"`
	Seconds         float64 `json:"seconds"`
	ThroughputMBps  float64 `json:"throughput_mbps"` // 2×bytes / elapsed
	GroupsSent      uint64  `json:"groups_sent"`
	GroupRTTp50us   int64   `json:"group_rtt_p50_us"`
	GroupRTTp99us   int64   `json:"group_rtt_p99_us"`
	GroupRTTMeanus  float64 `json:"group_rtt_mean_us"`
	Retransmissions uint64  `json:"retransmissions"`
	BilledPackets   uint64  `json:"billed_packets"`
	BilledBytes     uint64  `json:"billed_bytes"`
}

func runGateway(out string, total int64) error {
	var results []gatewayBenchResult
	for _, hops := range []int{1, 2, 4} {
		r, err := benchGateway(hops, total)
		if err != nil {
			return fmt.Errorf("gateway bench hops=%d: %w", hops, err)
		}
		fmt.Printf("gateway hops=%d  %8.1f MB/s  rtt p50=%dus p99=%dus  groups=%d retx=%d billed=%dB\n",
			r.Hops, r.ThroughputMBps, r.GroupRTTp50us, r.GroupRTTp99us,
			r.GroupsSent, r.Retransmissions, r.BilledBytes)
		results = append(results, r)
	}
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func benchGateway(hops int, total int64) (gatewayBenchResult, error) {
	var res gatewayBenchResult
	gs, err := daemon.StartGateway(daemon.GatewayConfig{Hops: hops})
	if err != nil {
		return res, err
	}
	defer gs.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				io.Copy(c, c)
				if tc, ok := c.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
			}(c)
		}
	}()

	conn, err := gateway.DialSocks(gs.Addr(), ln.Addr().String())
	if err != nil {
		return res, err
	}
	defer conn.Close()

	start := time.Now()
	var wg sync.WaitGroup
	var sentSum, gotSum [32]byte
	var got int64
	var readErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := sha256.New()
		got, readErr = io.Copy(h, conn)
		h.Sum(gotSum[:0])
	}()
	h := sha256.New()
	rnd := rand.New(rand.NewSource(7))
	buf := make([]byte, 256<<10)
	for left := total; left > 0; {
		n := int64(len(buf))
		if left < n {
			n = left
		}
		rnd.Read(buf[:n])
		h.Write(buf[:n])
		if _, err := conn.Write(buf[:n]); err != nil {
			return res, fmt.Errorf("write: %w", err)
		}
		left -= n
	}
	h.Sum(sentSum[:0])
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	wg.Wait()
	elapsed := time.Since(start)
	switch {
	case readErr != nil:
		return res, fmt.Errorf("read back: %w", readErr)
	case got != total:
		return res, fmt.Errorf("echoed %d bytes, want %d", got, total)
	case sentSum != gotSum:
		return res, fmt.Errorf("hash mismatch")
	}
	if problems := gs.Reconcile(); len(problems) > 0 {
		return res, fmt.Errorf("ledger reconciliation failed: %v", problems)
	}

	is := gs.IngressStats()
	bill := gs.Bill()[check.GatewayAccount]
	return gatewayBenchResult{
		Hops:            hops,
		BytesEachWay:    total,
		Seconds:         elapsed.Seconds(),
		ThroughputMBps:  float64(2*total) / elapsed.Seconds() / 1e6,
		GroupsSent:      is.GroupsSent,
		GroupRTTp50us:   is.GroupRTTp50us,
		GroupRTTp99us:   is.GroupRTTp99us,
		GroupRTTMeanus:  is.GroupRTTMeanus,
		Retransmissions: is.VMTP.Retransmissions + is.VMTP.SelectiveResends,
		BilledPackets:   bill.Packets,
		BilledBytes:     bill.Bytes,
	}, nil
}
