// Command sirpent-bench regenerates the paper's evaluation: every
// experiment table in the reproduction index (DESIGN.md §2), printed with
// its paper claim and shape checks.
//
// Usage:
//
//	sirpent-bench            # run everything
//	sirpent-bench -run E03   # one experiment
//	sirpent-bench -list      # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	runID := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.IDs()
	if *runID != "" {
		ids = strings.Split(*runID, ",")
	}

	failed := 0
	for _, id := range ids {
		t, err := experiments.Run(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(2)
		}
		t.Fprint(os.Stdout)
		failed += len(t.Failed())
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d shape checks FAILED\n", failed)
		os.Exit(1)
	}
}
