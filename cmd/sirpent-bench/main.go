// Command sirpent-bench regenerates the paper's evaluation: every
// experiment table in the reproduction index (DESIGN.md §2), printed with
// its paper claim and shape checks.
//
// Usage:
//
//	sirpent-bench            # run everything
//	sirpent-bench -run E03   # one experiment
//	sirpent-bench -list      # list experiment IDs
//	sirpent-bench -live      # livenet forwarding benchmark -> BENCH_livenet.json
//	sirpent-bench -trace     # replay seeded topologies with per-hop traces
//	sirpent-bench -ledger    # token-authorized billing cross-check
//	sirpent-bench -gateway   # SOCKS relay path benchmark -> BENCH_gateway.json
//
// Any mode combines with -cpuprofile and/or -memprofile to capture
// pprof-format profiles of the selected workload:
//
//	sirpent-bench -live -live-dur 250ms -cpuprofile cpu.pprof -memprofile mem.pprof
//	go tool pprof cpu.pprof
//
// Trace mode replays the conformance harness's seeded scenarios with
// hop-level tracing enabled on both substrates, prints a per-hop timing
// table for every flow (narrow to one with -trace-flow), and exits
// non-zero if any flow's path diverges between netsim and livenet.
//
// Ledger mode runs the same seeded scenarios with every router
// token-guarded and each flow billed to a per-source account, prints the
// per-account billing table from each substrate, and exits non-zero if
// either ledger fails reconciliation against its forwarding plane or
// the substrates bill differently.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/livenet"
)

func main() {
	runID := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	live := flag.Bool("live", false, "run the livenet forwarding benchmark instead of the experiment tables")
	liveOut := flag.String("live-out", "BENCH_livenet.json", "output path for -live results")
	liveDur := flag.Duration("live-dur", time.Second, "measurement duration per -live topology")
	traceMode := flag.Bool("trace", false, "replay seeded topologies with hop-level tracing and print per-hop tables")
	traceSeeds := flag.String("trace-seeds", "1,2,3", "comma-separated scenario seeds for -trace")
	traceFlow := flag.Uint64("trace-flow", 0, "print only this flow ID in -trace output (0: all flows)")
	ledgerMode := flag.Bool("ledger", false, "run token-authorized seeded scenarios on both substrates and cross-check per-account billing")
	ledgerSeeds := flag.String("ledger-seeds", "1,2,3", "comma-separated scenario seeds for -ledger")
	gatewayMode := flag.Bool("gateway", false, "benchmark the SOCKS gateway relay path over chain lengths")
	gatewayOut := flag.String("gateway-out", "BENCH_gateway.json", "output path for -gateway results")
	gatewayBytes := flag.Int64("gateway-bytes", 16<<20, "bytes to transfer each way per -gateway run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected workload to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	// The workload body returns an exit code instead of calling os.Exit
	// so profile teardown (StopCPUProfile, the heap snapshot) always
	// runs — os.Exit skips deferred writes.
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	code := func() int {
		if *live {
			if err := runLive(*liveOut, *liveDur); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return 2
			}
			return 0
		}

		if *traceMode {
			if err := runTrace(*traceSeeds, *traceFlow); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return 1
			}
			return 0
		}

		if *gatewayMode {
			if err := runGateway(*gatewayOut, *gatewayBytes); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return 1
			}
			return 0
		}

		if *ledgerMode {
			if err := runLedger(*ledgerSeeds); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return 1
			}
			return 0
		}

		ids := experiments.IDs()
		if *runID != "" {
			ids = strings.Split(*runID, ",")
		}

		failed := 0
		for _, id := range ids {
			t, err := experiments.Run(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return 2
			}
			t.Fprint(os.Stdout)
			failed += len(t.Failed())
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "%d shape checks FAILED\n", failed)
			return 1
		}
		return 0
	}()
	stopProfiles()
	os.Exit(code)
}

// startProfiles begins CPU profiling and arranges a heap snapshot at
// stop; either path may be empty. The returned stop must run before
// os.Exit.
func startProfiles(cpu, mem string) (func(), error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
			fmt.Printf("wrote %s\n", cpu)
		}
		if mem == "" {
			return
		}
		f, err := os.Create(mem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return
		}
		runtime.GC() // materialize the final live set
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", mem)
	}, nil
}

// printLive renders one result row for the console.
func printLive(r livenet.BenchResult) {
	fmt.Printf("%-12s %-7s %-8s hops=%-2d flows=%-2d gmp=%d  %10.0f pkts/s  %8.1f ns/hop  %6.3f allocs/pkt\n",
		r.Topology, r.Mode, r.Injection, r.Hops, r.Flows, r.GOMAXPROCS, r.PktsPerSec, r.NsPerHop, r.AllocsPerPkt)
}

// runLive measures the forwarding fast path on both substrates — hop
// chains of increasing length, a 4×4 router mesh, a flow-count sweep
// through a shared trunk, a GOMAXPROCS sweep, and the isolated-hop
// kernel — writing every row as JSON.
func runLive(out string, dur time.Duration) error {
	var results []livenet.BenchResult
	add := func(r livenet.BenchResult) {
		printLive(r)
		results = append(results, r)
	}
	for _, batched := range []bool{false, true} {
		for _, hops := range []int{1, 2, 4, 8, 12, 16} {
			add(livenet.BenchChain(hops, dur, batched))
		}
		// Prepared injection strips the per-packet endpoint encode/decode
		// so short chains expose the network cost instead of the hosts'.
		for _, hops := range []int{1, 4, 12} {
			add(livenet.BenchChainPrepared(hops, dur, batched))
		}
		add(livenet.BenchMesh(4, 4, dur, batched))
		for _, flows := range []int{1, 2, 4, 8} {
			add(livenet.BenchFan(4, flows, dur, batched))
		}
		// Isolated hop: the router kernel with no endpoint overhead.
		// Iteration count chosen so the measurement takes ~dur.
		add(livenet.BenchHop(batched, 1<<21))
	}
	// GOMAXPROCS sweep on the batched 4-hop chain: on a multi-core box
	// shard workers spread across Ps; on one core the curve is flat.
	prev := runtime.GOMAXPROCS(0)
	for _, gmp := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(gmp)
		add(livenet.BenchChain(4, dur, true))
	}
	runtime.GOMAXPROCS(prev)

	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
