package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/check"
	"repro/internal/trace"
)

// traceDeadline bounds how long one livenet cross-check may take to
// quiesce.
const traceDeadline = 10 * time.Second

// runTrace replays the conformance harness's seeded topologies with
// hop-level tracing on, printing one per-hop timing table per flow from
// the netsim run and cross-checking each flow's path against the
// livenet substrate. Returns an error if any flow's path diverges
// between the substrates — the same condition the differential suite
// fails on.
func runTrace(seedList string, onlyFlow uint64) error {
	seeds, err := parseSeeds(seedList)
	if err != nil {
		return err
	}
	mismatches := 0
	for _, seed := range seeds {
		sc := check.Generate(seed)
		net := check.BuildNetsim(sc)
		routes, err := check.FlowRoutes(net, sc)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		rec := trace.NewRecorder(check.TraceID)
		agg := trace.NewMetrics()
		net.SetTracer(trace.Tee(rec, agg))
		check.RunNetsim(net, sc, routes)
		_, _, liveRec := check.RunLivenetTraced(sc, routes, traceDeadline)

		fmt.Printf("== seed %d: %d routers, %d hosts, %d flows ==\n",
			seed, sc.NRouters, len(sc.HostRouter), len(sc.Flows))
		for _, f := range sc.Flows {
			if onlyFlow != 0 && f.ID != onlyFlow {
				continue
			}
			pt := check.RequestTrace(rec, f.ID)
			live := check.RequestTrace(liveRec, f.ID)
			fmt.Printf("flow %d (%s -> %s): %s\n",
				f.ID, check.HostName(f.Src), check.HostName(f.Dst), pt.Summary())
			fmt.Print(indent(pt.Format()))
			switch {
			case live == nil:
				mismatches++
				fmt.Println("  livenet: NO TRACE RECORDED")
			case live.Summary() != pt.Summary():
				mismatches++
				fmt.Printf("  livenet: PATH DIVERGES: %s\n%s", live.Summary(), indent(live.Format()))
			default:
				fmt.Println("  livenet: path matches")
			}
		}
		s := agg.Snapshot()
		fmt.Printf("netsim aggregate: %d packets, %d hops (%d cut-through, %d store-fwd), hop latency p50=%dns p99=%dns\n",
			s.Packets, s.Hops, s.CutThrough, s.StoreForward, s.HopLatencyP50Ns, s.HopLatencyP99Ns)
		if len(s.Drops) > 0 {
			fmt.Printf("drop reasons: %v\n", s.Drops)
		} else {
			fmt.Println("drop reasons: none")
		}
		fmt.Println()
	}
	if mismatches > 0 {
		return fmt.Errorf("%d flows diverge between substrates", mismatches)
	}
	return nil
}

func parseSeeds(list string) ([]int64, error) {
	var seeds []int64
	for _, s := range strings.Split(list, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", s, err)
		}
		seeds = append(seeds, n)
	}
	return seeds, nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
