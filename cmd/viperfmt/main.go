// Command viperfmt is a VIPER packet inspector: it builds a demonstration
// packet for the paper's running example (two Ethernets joined by a
// router, §2), prints its wire encoding, then traces the per-hop
// transformation — segment stripped, return segment appended — and the
// receiver's return-route construction.
//
// With -hex, it instead decodes a hex-encoded packet from the argument or
// stdin.
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/ethernet"
	"repro/internal/viper"
)

func main() {
	hexIn := flag.Bool("hex", false, "decode a hex packet from args or stdin instead of running the demo")
	flag.Parse()

	if *hexIn {
		decodeHex()
		return
	}
	demo()
}

func decodeHex() {
	var in string
	if flag.NArg() > 0 {
		in = strings.Join(flag.Args(), "")
	} else {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			in += strings.TrimSpace(sc.Text())
		}
	}
	b, err := hex.DecodeString(strings.ReplaceAll(in, " ", ""))
	if err != nil {
		fmt.Fprintln(os.Stderr, "viperfmt: bad hex:", err)
		os.Exit(1)
	}
	pkt, err := viper.Decode(b)
	if err != nil {
		fmt.Fprintln(os.Stderr, "viperfmt: decode:", err)
		os.Exit(1)
	}
	fmt.Println(pkt)
}

func demo() {
	// The paper's §2 walk-through: host S on Ethernet 1 sends through
	// router R to host D on Ethernet 2.
	sAddr := ethernet.AddrFromUint64(0x5)
	dAddr := ethernet.AddrFromUint64(0xD)
	r1Addr := ethernet.AddrFromUint64(0xA1) // router on net1
	r2Addr := ethernet.AddrFromUint64(0xA2) // router on net2

	route := []viper.Segment{
		{ // sender's directive: enetHdr1 in the paper
			Port:     1,
			PortInfo: ethernet.Header{Dst: r1Addr, Src: sAddr, Type: viper.EtherTypeVIPER}.Encode(),
		},
		{ // router R's segment: [port,tos,enetHdr2]
			Port:     2,
			Priority: 2,
			PortInfo: ethernet.Header{Dst: dAddr, Src: r2Addr, Type: viper.EtherTypeVIPER}.Encode(),
		},
		{Port: viper.PortLocal}, // destination host segment
	}
	if err := viper.SealRoute(route); err != nil {
		panic(err)
	}

	fmt.Println("=== Route as constructed by the directory ===")
	for i, s := range route {
		fmt.Printf("  [%d] %v\n", i, &s)
	}

	// The sender consumes its directive: transmit on port 1 with the
	// first header, packet holds the remaining segments.
	pkt := viper.NewPacket(cloneSegs(route[1:]), []byte("data"))
	pkt.Trailer = append(pkt.Trailer, viper.Segment{Port: viper.PortLocal})
	dump("On the wire, S -> R (after enetHdr1)", pkt)

	// Router R: strip head, append return segment with swapped header.
	arrivalHdr := ethernet.Header{Dst: r1Addr, Src: sAddr, Type: viper.EtherTypeVIPER}
	seg := *pkt.Current()
	ret := viper.Segment{Port: 1, Priority: seg.Priority, PortInfo: arrivalHdr.Swapped().Encode()}
	pkt.ConsumeHead(ret)
	dump("On the wire, R -> D (after enetHdr2)", pkt)

	// Destination host: consume final segment, build the return route.
	arrival2 := ethernet.Header{Dst: dAddr, Src: r2Addr, Type: viper.EtherTypeVIPER}
	final := *pkt.Current()
	pkt.ConsumeHead(viper.Segment{Port: 1, Priority: final.Priority, PortInfo: arrival2.Swapped().Encode()})

	fmt.Println("=== Return route constructed from the trailer alone ===")
	for i, s := range pkt.ReturnRoute() {
		fmt.Printf("  [%d] %v\n", i, &s)
	}
}

func cloneSegs(in []viper.Segment) []viper.Segment {
	out := make([]viper.Segment, len(in))
	for i := range in {
		out[i] = in[i].Clone()
	}
	return out
}

func dump(title string, pkt *viper.Packet) {
	b, err := pkt.Encode()
	if err != nil {
		panic(err)
	}
	fmt.Printf("=== %s (%d bytes) ===\n%s\n", title, len(b), hex.Dump(b))
	fmt.Println(pkt)
	fmt.Println()
}
