// Command viperfmt is a VIPER packet inspector: it builds a demonstration
// packet for the paper's running example (two Ethernets joined by a
// router, §2), prints its wire encoding, then traces the per-hop
// transformation — segment stripped, return segment appended — and the
// receiver's return-route construction.
//
// With -hex, it instead decodes a hex-encoded packet from the argument or
// stdin. With -dag, it runs the failover-DAG walk-through: a route whose
// router hop carries ranked alternate next-hops, printed as a branch
// tree. DAG hops found in -hex input are expanded the same way.
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/ethernet"
	"repro/internal/viper"
)

func main() {
	hexIn := flag.Bool("hex", false, "decode a hex packet from args or stdin instead of running the demo")
	dagIn := flag.Bool("dag", false, "run the failover-DAG demo instead of the §2 walk-through")
	flag.Parse()

	switch {
	case *hexIn:
		decodeHex()
	case *dagIn:
		dagDemo()
	default:
		demo()
	}
}

func decodeHex() {
	var in string
	if flag.NArg() > 0 {
		in = strings.Join(flag.Args(), "")
	} else {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			in += strings.TrimSpace(sc.Text())
		}
	}
	b, err := hex.DecodeString(strings.ReplaceAll(in, " ", ""))
	if err != nil {
		fmt.Fprintln(os.Stderr, "viperfmt: bad hex:", err)
		os.Exit(1)
	}
	pkt, err := viper.Decode(b)
	if err != nil {
		fmt.Fprintln(os.Stderr, "viperfmt: decode:", err)
		os.Exit(1)
	}
	fmt.Println(pkt)
	for i := range pkt.Route {
		if viper.IsDAGSegment(&pkt.Route[i]) {
			fmt.Printf("route[%d] expanded:\n", i)
			printSegments(os.Stdout, pkt.Route[i:i+1], "  ")
		}
	}
}

// printSegments renders a segment list one per line, expanding DAG
// hops into a branch tree of their primary and ranked alternates.
func printSegments(w io.Writer, segs []viper.Segment, indent string) {
	for i := range segs {
		s := &segs[i]
		if !viper.IsDAGSegment(s) {
			fmt.Fprintf(w, "%s[%d] %v\n", indent, i, s)
			continue
		}
		var ports [viper.MaxAlternates]uint8
		n, ok := viper.DAGAlternatePorts(s, &ports)
		if !ok {
			fmt.Fprintf(w, "%s[%d] DAG hop port=%d: MALFORMED\n", indent, i, s.Port)
			continue
		}
		pi, _ := viper.DAGPrimaryInfo(s)
		fmt.Fprintf(w, "%s[%d] DAG hop: primary port=%d prio=%d token=%dB info=%x, %d alternate(s)\n",
			indent, i, s.Port, uint8(s.Priority), len(s.PortToken), pi, n)
		for r := 0; r < n; r++ {
			branch := "├─"
			cont := "│   "
			if r == n-1 {
				branch, cont = "└─", "    "
			}
			alt, err := viper.DAGAlternate(s, r)
			if err != nil {
				fmt.Fprintf(w, "%s  %s rank %d via port %d: DECODE ERROR: %v\n", indent, branch, r+1, ports[r], err)
				continue
			}
			fmt.Fprintf(w, "%s  %s rank %d via port %d (%d segment(s)):\n", indent, branch, r+1, ports[r], len(alt))
			printSegments(w, alt, indent+"  "+cont)
		}
	}
}

// dagDemo builds the failover walk-through: a route whose router hop
// carries two ranked alternates, each a complete tokened path.
func dagDemo() {
	alt1 := []viper.Segment{
		{Port: 3, Priority: 2, PortToken: []byte("tok-r-p3"), Flags: viper.FlagVNT},
		{Port: 1, Priority: 2, PortToken: []byte("tok-r2-p1"), Flags: viper.FlagVNT},
		{Port: viper.PortLocal},
	}
	alt2 := []viper.Segment{
		{Port: 4, Priority: 2, PortToken: []byte("tok-r-p4"), Flags: viper.FlagVNT},
		{Port: viper.PortLocal},
	}
	primaryHdr := ethernet.Header{
		Dst:  ethernet.AddrFromUint64(0xD),
		Src:  ethernet.AddrFromUint64(0xA2),
		Type: viper.EtherTypeVIPER,
	}.Encode()
	dagSeg, err := viper.DAGSegment(2, 2, []byte("tok-r-p2"), primaryHdr, [][]viper.Segment{alt1, alt2})
	if err != nil {
		panic(err)
	}
	route := []viper.Segment{
		{Port: 1, PortInfo: ethernet.Header{
			Dst:  ethernet.AddrFromUint64(0xA1),
			Src:  ethernet.AddrFromUint64(0x5),
			Type: viper.EtherTypeVIPER,
		}.Encode()},
		dagSeg,
		{Port: viper.PortLocal},
	}
	if err := viper.SealRoute(route); err != nil {
		panic(err)
	}
	fmt.Println("=== Failover-DAG route: the router hop carries ranked alternates ===")
	printSegments(os.Stdout, route, "  ")
	fmt.Println()

	pkt := viper.NewPacket(cloneSegs(route[1:]), []byte("data"))
	pkt.Trailer = append(pkt.Trailer, viper.Segment{Port: viper.PortLocal})
	dump("On the wire, S -> R (DAG hop at the head)", pkt)
	fmt.Println("If R's port 2 is down, R rewrites the header in place to the")
	fmt.Println("best live branch (rank 1 first) and forwards — no directory")
	fmt.Println("re-query, and the branch's own tokens pay for the detour.")
}

func demo() {
	// The paper's §2 walk-through: host S on Ethernet 1 sends through
	// router R to host D on Ethernet 2.
	sAddr := ethernet.AddrFromUint64(0x5)
	dAddr := ethernet.AddrFromUint64(0xD)
	r1Addr := ethernet.AddrFromUint64(0xA1) // router on net1
	r2Addr := ethernet.AddrFromUint64(0xA2) // router on net2

	route := []viper.Segment{
		{ // sender's directive: enetHdr1 in the paper
			Port:     1,
			PortInfo: ethernet.Header{Dst: r1Addr, Src: sAddr, Type: viper.EtherTypeVIPER}.Encode(),
		},
		{ // router R's segment: [port,tos,enetHdr2]
			Port:     2,
			Priority: 2,
			PortInfo: ethernet.Header{Dst: dAddr, Src: r2Addr, Type: viper.EtherTypeVIPER}.Encode(),
		},
		{Port: viper.PortLocal}, // destination host segment
	}
	if err := viper.SealRoute(route); err != nil {
		panic(err)
	}

	fmt.Println("=== Route as constructed by the directory ===")
	for i, s := range route {
		fmt.Printf("  [%d] %v\n", i, &s)
	}

	// The sender consumes its directive: transmit on port 1 with the
	// first header, packet holds the remaining segments.
	pkt := viper.NewPacket(cloneSegs(route[1:]), []byte("data"))
	pkt.Trailer = append(pkt.Trailer, viper.Segment{Port: viper.PortLocal})
	dump("On the wire, S -> R (after enetHdr1)", pkt)

	// Router R: strip head, append return segment with swapped header.
	arrivalHdr := ethernet.Header{Dst: r1Addr, Src: sAddr, Type: viper.EtherTypeVIPER}
	seg := *pkt.Current()
	ret := viper.Segment{Port: 1, Priority: seg.Priority, PortInfo: arrivalHdr.Swapped().Encode()}
	pkt.ConsumeHead(ret)
	dump("On the wire, R -> D (after enetHdr2)", pkt)

	// Destination host: consume final segment, build the return route.
	arrival2 := ethernet.Header{Dst: dAddr, Src: r2Addr, Type: viper.EtherTypeVIPER}
	final := *pkt.Current()
	pkt.ConsumeHead(viper.Segment{Port: 1, Priority: final.Priority, PortInfo: arrival2.Swapped().Encode()})

	fmt.Println("=== Return route constructed from the trailer alone ===")
	for i, s := range pkt.ReturnRoute() {
		fmt.Printf("  [%d] %v\n", i, &s)
	}
}

func cloneSegs(in []viper.Segment) []viper.Segment {
	out := make([]viper.Segment, len(in))
	for i := range in {
		out[i] = in[i].Clone()
	}
	return out
}

func dump(title string, pkt *viper.Packet) {
	b, err := pkt.Encode()
	if err != nil {
		panic(err)
	}
	fmt.Printf("=== %s (%d bytes) ===\n%s\n", title, len(b), hex.Dump(b))
	fmt.Println(pkt)
	fmt.Println()
}
