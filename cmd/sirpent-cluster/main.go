// Command sirpent-cluster launches a localhost Sirpent cluster: one
// `sirpentd dir` process serving the directory, plus N `sirpentd peer`
// processes that each realize one partition of a seeded conformance
// scenario and carry cross-partition links over real UDP sockets.
//
// After every peer exits, the launcher collects their reports from the
// directory and renders a verdict: every flow delivered and echoed
// exactly once across process boundaries, the merged per-account
// ledger internally reconciled, and per-account totals identical to a
// single-process livenet run of the same seed. Exit status 0 means the
// whole verdict passed; anything else is a failure (and CI treats it
// as such — see the cluster-smoke job).
//
// With -gateway, the peers additionally bind SOCKS gateway relays on
// the scenario's deterministic gateway hosts, and the launcher pushes
// a hash-verified TCP transfer (-gateway-bytes each way) through
// SOCKS → multi-process mesh → egress → a local echo server before
// raising the directory's shutdown latch. The verdict then also
// requires stream byte conservation across the relays and the gateway
// account billed in the merged ledger (DESIGN.md §13).
package main

import (
	"bufio"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/check"
	"repro/internal/daemon"
	"repro/internal/directory"
	"repro/internal/gateway"
	"repro/internal/viper"
)

func main() {
	n := flag.Int("n", 3, "number of peer processes")
	seed := flag.Int64("seed", 0, "scenario seed (0 = first seed with enough routers and cross-links)")
	sirpentd := flag.String("sirpentd", "", "path to the sirpentd binary (default: next to this launcher, else $PATH)")
	settle := flag.Duration("settle", 30*time.Second, "per-peer quiesce deadline")
	gw := flag.Bool("gateway", false, "gateway mode: run peers with SOCKS relays and push a hash-verified TCP transfer through the cluster")
	gwBytes := flag.Int64("gateway-bytes", 10<<20, "bytes to transfer each way through the gateway (gateway mode)")
	report := flag.Bool("report", false, "print the merged cluster telemetry report after the run")
	failover := flag.Bool("failover", false, "failover smoke: kill one cross-partition tunnel mid-run and require zero lost transactions (flow routes carry in-header alternates)")
	flag.Parse()

	if err := run(*n, *seed, *sirpentd, *settle, *gw, *gwBytes, *report, *failover); err != nil {
		fmt.Fprintln(os.Stderr, "sirpent-cluster:", err)
		os.Exit(1)
	}
}

func run(n int, seed int64, sirpentd string, settle time.Duration, gw bool, gwBytes int64, report, failover bool) error {
	if n < 2 {
		return fmt.Errorf("-n must be at least 2 (got %d)", n)
	}
	bin, err := findSirpentd(sirpentd)
	if err != nil {
		return err
	}
	if seed == 0 {
		seed, err = autoSeed(n, failover)
		if err != nil {
			return err
		}
	}
	sc := check.Generate(seed)
	fmt.Printf("cluster: %d peers, seed %d (%d routers, %d hosts, %d flows, %d cross-links)\n",
		n, seed, sc.NRouters, len(sc.HostRouter), len(sc.Flows), len(check.CrossLinks(sc, n)))
	blip := -1
	if failover {
		blip, err = pickBlipLink(sc, n)
		if err != nil {
			return err
		}
		l := sc.Links[blip]
		fmt.Printf("cluster: failover smoke — link %d (r%d:%d <-> r%d:%d) dies between flow waves\n",
			blip, l.A, l.APort, l.B, l.BPort)
	}

	// The directory must outlive the peers: they report to it, and we
	// read the reports back out of it. Kill it last.
	dir := exec.Command(bin, "dir", "-addr", "127.0.0.1:0",
		"-seed", fmt.Sprint(seed), "-peers", fmt.Sprint(n))
	dir.Stderr = os.Stderr
	dirOut, err := dir.StdoutPipe()
	if err != nil {
		return err
	}
	if err := dir.Start(); err != nil {
		return fmt.Errorf("start dir: %w", err)
	}
	defer func() {
		dir.Process.Signal(os.Interrupt)
		dir.Wait()
	}()

	url, err := readDirURL(dirOut)
	if err != nil {
		return err
	}
	fmt.Printf("cluster: directory at %s\n", url)

	peers := make([]*exec.Cmd, n)
	for i := 0; i < n; i++ {
		args := []string{"peer",
			"-index", fmt.Sprint(i), "-peers", fmt.Sprint(n),
			"-seed", fmt.Sprint(seed), "-dir", url,
			"-settle", settle.String()}
		if gw {
			args = append(args, "-gateway")
		}
		if blip >= 0 {
			args = append(args, "-alternates", "2", "-failover-link", fmt.Sprint(blip))
		}
		p := exec.Command(bin, args...)
		p.Stdout = prefixWriter(check.PeerName(i))
		p.Stderr = prefixWriter(check.PeerName(i))
		if err := p.Start(); err != nil {
			killAll(peers[:i])
			return fmt.Errorf("start peer %d: %w", i, err)
		}
		peers[i] = p
	}
	client := directory.NewClient(url)

	// Gateway mode: with the peers running (they hold their drain
	// barrier for our shutdown latch), push a hash-verified transfer
	// through SOCKS → mesh → egress → local echo server, then raise
	// the latch so the peers drain and report.
	if gw {
		if err := driveGateway(client, gwBytes); err != nil {
			client.Shutdown() // release the peers regardless
			killErr := err
			for i, p := range peers {
				if err := p.Wait(); err != nil {
					fmt.Fprintf(os.Stderr, "cluster: peer %d exited: %v\n", i, err)
				}
			}
			return killErr
		}
		if err := client.Shutdown(); err != nil {
			return fmt.Errorf("raise shutdown latch: %w", err)
		}
	}
	var failed bool
	for i, p := range peers {
		if err := p.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "cluster: peer %d exited: %v\n", i, err)
			failed = true
		}
	}

	// Fetch the reports even when a peer failed — incomplete peers
	// still post theirs before exiting, and the counters localize the
	// fault (tunnel drop vs router drop vs wire loss).
	raw, err := client.Reports(10 * time.Second)
	if err != nil {
		if failed {
			return fmt.Errorf("one or more peers failed (and reports unavailable: %v)", err)
		}
		return fmt.Errorf("collect reports: %w", err)
	}
	reports, err := daemon.DecodeReports(raw)
	if err != nil {
		return err
	}
	fmt.Print(daemon.FormatReports(reports))
	if failed {
		return fmt.Errorf("one or more peers failed")
	}

	// Merged telemetry: the same scrape a human would do against
	// /debug/cluster, folded into the verdict. Peers ship it by default;
	// a cluster explicitly run without it just merges zero nodes.
	cluster, err := client.Cluster()
	if err != nil {
		return fmt.Errorf("fetch cluster telemetry: %w", err)
	}
	if report {
		fmt.Print(daemon.FormatClusterReport(cluster))
	}

	if problems := daemon.VerifyCluster(sc, n, reports); len(problems) > 0 {
		return fmt.Errorf("cluster verdict failed (%d problems):\n  %s",
			len(problems), strings.Join(problems, "\n  "))
	}
	if len(cluster.Nodes) > 0 {
		if problems := daemon.VerifyClusterTelemetry(cluster); len(problems) > 0 {
			return fmt.Errorf("telemetry verdict failed (%d problems):\n  %s",
				len(problems), strings.Join(problems, "\n  "))
		}
	}
	if gw {
		// The gateway account only exists in the distributed run, so
		// the single-process ledger diff does not apply; the gateway
		// verdict checks stream conservation and billing instead.
		if problems := daemon.VerifyGatewayCluster(sc, n, reports, uint64(gwBytes)); len(problems) > 0 {
			return fmt.Errorf("gateway verdict failed (%d problems):\n  %s",
				len(problems), strings.Join(problems, "\n  "))
		}
		fmt.Println("cluster: PASS — flows delivered exactly once AND the SOCKS transfer crossed the cluster hash-intact with the gateway account billed, ledgers reconciling, and trace spans accounting for every traced crossing")
		return nil
	}
	if failover {
		// The detour bills the branch actually taken, so the healthy-mesh
		// single-process ledger diff does not apply; the verdict above
		// already proved internal reconciliation and exactly-once
		// delivery — zero lost transactions despite the dead tunnel.
		var fo uint64
		for _, r := range reports {
			fo += r.Failovers
		}
		if fo == 0 {
			return fmt.Errorf("failover smoke: tunnel died but no in-header failovers were recorded")
		}
		fmt.Printf("cluster: PASS — link %d died mid-run, %d in-header failovers diverted every crossing transaction, all flows delivered and echoed exactly once, ledgers reconcile\n", blip, fo)
		return nil
	}
	diffs, err := daemon.CompareWithSingleProcess(seed, daemon.ClusterLedger(reports), 15*time.Second)
	if err != nil {
		return err
	}
	if len(diffs) > 0 {
		return fmt.Errorf("ledger diverges from single-process run:\n  %s",
			strings.Join(diffs, "\n  "))
	}
	fmt.Println("cluster: PASS — all flows delivered and echoed exactly once; ledgers reconcile and match the single-process run")
	return nil
}

// driveGateway runs the launcher's half of a gateway-mode run: an echo
// server as the "real destination", a SOCKS dial through whichever
// peer registered an ingress, and a hash-verified bidirectional
// transfer of total bytes.
func driveGateway(client *directory.Client, total int64) error {
	socks, err := waitSocks(client, 30*time.Second)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				io.Copy(c, c)
				if cw, ok := c.(*net.TCPConn); ok {
					cw.CloseWrite()
				}
			}(c)
		}
	}()
	fmt.Printf("cluster: SOCKS ingress at %s, echoing %d bytes through the mesh...\n", socks, total)

	conn, err := gateway.DialSocks(socks, ln.Addr().String())
	if err != nil {
		return fmt.Errorf("SOCKS dial: %w", err)
	}
	defer conn.Close()

	start := time.Now()
	var wg sync.WaitGroup
	var sentSum, gotSum [32]byte
	var got int64
	var readErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := sha256.New()
		got, readErr = io.Copy(h, conn)
		h.Sum(gotSum[:0])
	}()
	h := sha256.New()
	rnd := rand.New(rand.NewSource(42))
	buf := make([]byte, 256<<10)
	for left := total; left > 0; {
		n := int64(len(buf))
		if left < n {
			n = left
		}
		rnd.Read(buf[:n])
		h.Write(buf[:n])
		if _, err := conn.Write(buf[:n]); err != nil {
			return fmt.Errorf("gateway write: %w", err)
		}
		left -= n
	}
	h.Sum(sentSum[:0])
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}
	wg.Wait()
	if readErr != nil {
		return fmt.Errorf("gateway read back: %w", readErr)
	}
	if got != total {
		return fmt.Errorf("echoed %d bytes, want %d", got, total)
	}
	if sentSum != gotSum {
		return fmt.Errorf("echo bytes differ from sent bytes (hash mismatch)")
	}
	el := time.Since(start)
	fmt.Printf("cluster: transfer OK — %d bytes each way in %v (%.1f MB/s round trip), hashes match\n",
		total, el.Round(time.Millisecond), float64(2*total)/el.Seconds()/1e6)
	return nil
}

// waitSocks polls registrations until a peer advertises its SOCKS
// ingress address.
func waitSocks(client *directory.Client, deadline time.Duration) (string, error) {
	end := time.Now().Add(deadline)
	for {
		peers, err := client.Peers()
		if err == nil {
			for _, p := range peers {
				if p.Socks != "" {
					return p.Socks, nil
				}
			}
		}
		if time.Now().After(end) {
			if err == nil {
				err = fmt.Errorf("no peer registered a SOCKS ingress")
			}
			return "", err
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// pickBlipLink chooses the cross-partition link the failover smoke
// kills. Wave-1 flows (odd scenario indexes) run after the link dies,
// so every one of them crossing it must do so at a DAG hop — a linear
// hop into a dead link is a lost transaction — and at least one must
// actually cross, or the smoke proves nothing. Routes are computed
// locally with the same directory code the dir process serves, so the
// walk sees exactly the segment lists the peers will inject.
func pickBlipLink(sc *check.Scenario, n int) (int, error) {
	net := check.BuildNetsim(sc)
	routes, err := check.FlowRoutesAlt(net, sc, 2)
	if err != nil {
		return -1, fmt.Errorf("failover smoke: compute routes: %w", err)
	}
	best, bestCount := -1, 0
	for _, li := range check.CrossLinks(sc, n) {
		count, ok := 0, true
		for fi, f := range sc.Flows {
			if fi%2 != 1 {
				continue // wave-0 flow: completes before the link dies
			}
			dag, crossed := crossesLink(sc, routes[f.ID], f.Src, li)
			if !crossed {
				continue
			}
			if !dag {
				ok = false
				break
			}
			count++
		}
		if ok && count > bestCount {
			best, bestCount = li, count
		}
	}
	if best < 0 {
		return -1, fmt.Errorf("failover smoke: no cross-link is crossed only at DAG hops by wave-1 flows (try another -seed)")
	}
	return best, nil
}

// crossesLink walks a flow's primary route across the topology and
// reports whether it traverses global link li — and if so, whether
// the hop entering the link carries in-header alternates.
func crossesLink(sc *check.Scenario, route []viper.Segment, src, li int) (dag, crossed bool) {
	cur := sc.HostRouter[src]
	for i := 1; i < len(route); i++ {
		seg := &route[i]
		next := -1
		for j, l := range sc.Links {
			if l.A == cur && l.APort == seg.Port {
				next = l.B
			} else if l.B == cur && l.BPort == seg.Port {
				next = l.A
			} else {
				continue
			}
			if j == li {
				return viper.IsDAGSegment(seg), true
			}
			break
		}
		if next < 0 {
			return false, false // left the trunk mesh: host-attachment hop
		}
		cur = next
	}
	return false, false
}

// findSirpentd resolves the sirpentd binary: explicit flag, then a
// sibling of this launcher, then $PATH.
func findSirpentd(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sib := filepath.Join(filepath.Dir(self), "sirpentd")
		if st, err := os.Stat(sib); err == nil && !st.IsDir() {
			return sib, nil
		}
	}
	if p, err := exec.LookPath("sirpentd"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("sirpentd binary not found (use -sirpentd)")
}

// autoSeed picks the first seed whose scenario gives every peer at
// least one router and actually crosses the partition, so the run
// exercises the UDP tunnels rather than degenerating to one process
// doing all the work. In failover mode the scenario must additionally
// admit a blippable cross-link (pickBlipLink's conditions).
func autoSeed(n int, failover bool) (int64, error) {
	for seed := int64(1); seed < 1000; seed++ {
		sc := check.Generate(seed)
		if sc.NRouters < n || len(check.CrossLinks(sc, n)) == 0 {
			continue
		}
		if failover {
			if _, err := pickBlipLink(sc, n); err != nil {
				continue
			}
		}
		return seed, nil
	}
	return 0, fmt.Errorf("no seed under 1000 yields a %d-peer scenario (failover=%v)", n, failover)
}

// readDirURL scans the dir process's stdout for its
// SIRPENT_DIR_URL=... line (the port is dynamically bound), then keeps
// draining the pipe in the background.
func readDirURL(r interface{ Read([]byte) (int, error) }) (string, error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if url, ok := strings.CutPrefix(line, "SIRPENT_DIR_URL="); ok {
			go func() {
				for sc.Scan() {
					fmt.Printf("dir | %s\n", sc.Text())
				}
			}()
			return url, nil
		}
		fmt.Printf("dir | %s\n", line)
	}
	if err := sc.Err(); err != nil {
		return "", fmt.Errorf("reading dir output: %w", err)
	}
	return "", fmt.Errorf("dir exited without printing SIRPENT_DIR_URL")
}

func killAll(cmds []*exec.Cmd) {
	for _, c := range cmds {
		if c != nil && c.Process != nil {
			c.Process.Kill()
		}
	}
}

// prefixWriter returns a writer that prefixes each line with the peer
// name, keeping interleaved child output attributable.
func prefixWriter(name string) *lineWriter {
	return &lineWriter{prefix: name + " | "}
}

type lineWriter struct {
	prefix string
	buf    []byte
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	for {
		i := strings.IndexByte(string(w.buf), '\n')
		if i < 0 {
			break
		}
		fmt.Printf("%s%s\n", w.prefix, w.buf[:i])
		w.buf = w.buf[i+1:]
	}
	return len(p), nil
}
