// Command sirpent-cluster launches a localhost Sirpent cluster: one
// `sirpentd dir` process serving the directory, plus N `sirpentd peer`
// processes that each realize one partition of a seeded conformance
// scenario and carry cross-partition links over real UDP sockets.
//
// After every peer exits, the launcher collects their reports from the
// directory and renders a verdict: every flow delivered and echoed
// exactly once across process boundaries, the merged per-account
// ledger internally reconciled, and per-account totals identical to a
// single-process livenet run of the same seed. Exit status 0 means the
// whole verdict passed; anything else is a failure (and CI treats it
// as such — see the cluster-smoke job).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/check"
	"repro/internal/daemon"
	"repro/internal/directory"
)

func main() {
	n := flag.Int("n", 3, "number of peer processes")
	seed := flag.Int64("seed", 0, "scenario seed (0 = first seed with enough routers and cross-links)")
	sirpentd := flag.String("sirpentd", "", "path to the sirpentd binary (default: next to this launcher, else $PATH)")
	settle := flag.Duration("settle", 30*time.Second, "per-peer quiesce deadline")
	flag.Parse()

	if err := run(*n, *seed, *sirpentd, *settle); err != nil {
		fmt.Fprintln(os.Stderr, "sirpent-cluster:", err)
		os.Exit(1)
	}
}

func run(n int, seed int64, sirpentd string, settle time.Duration) error {
	if n < 2 {
		return fmt.Errorf("-n must be at least 2 (got %d)", n)
	}
	bin, err := findSirpentd(sirpentd)
	if err != nil {
		return err
	}
	if seed == 0 {
		seed, err = autoSeed(n)
		if err != nil {
			return err
		}
	}
	sc := check.Generate(seed)
	fmt.Printf("cluster: %d peers, seed %d (%d routers, %d hosts, %d flows, %d cross-links)\n",
		n, seed, sc.NRouters, len(sc.HostRouter), len(sc.Flows), len(check.CrossLinks(sc, n)))

	// The directory must outlive the peers: they report to it, and we
	// read the reports back out of it. Kill it last.
	dir := exec.Command(bin, "dir", "-addr", "127.0.0.1:0",
		"-seed", fmt.Sprint(seed), "-peers", fmt.Sprint(n))
	dir.Stderr = os.Stderr
	dirOut, err := dir.StdoutPipe()
	if err != nil {
		return err
	}
	if err := dir.Start(); err != nil {
		return fmt.Errorf("start dir: %w", err)
	}
	defer func() {
		dir.Process.Signal(os.Interrupt)
		dir.Wait()
	}()

	url, err := readDirURL(dirOut)
	if err != nil {
		return err
	}
	fmt.Printf("cluster: directory at %s\n", url)

	peers := make([]*exec.Cmd, n)
	for i := 0; i < n; i++ {
		p := exec.Command(bin, "peer",
			"-index", fmt.Sprint(i), "-peers", fmt.Sprint(n),
			"-seed", fmt.Sprint(seed), "-dir", url,
			"-settle", settle.String())
		p.Stdout = prefixWriter(check.PeerName(i))
		p.Stderr = prefixWriter(check.PeerName(i))
		if err := p.Start(); err != nil {
			killAll(peers[:i])
			return fmt.Errorf("start peer %d: %w", i, err)
		}
		peers[i] = p
	}
	var failed bool
	for i, p := range peers {
		if err := p.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "cluster: peer %d exited: %v\n", i, err)
			failed = true
		}
	}

	// Fetch the reports even when a peer failed — incomplete peers
	// still post theirs before exiting, and the counters localize the
	// fault (tunnel drop vs router drop vs wire loss).
	client := directory.NewClient(url)
	raw, err := client.Reports(10 * time.Second)
	if err != nil {
		if failed {
			return fmt.Errorf("one or more peers failed (and reports unavailable: %v)", err)
		}
		return fmt.Errorf("collect reports: %w", err)
	}
	reports, err := daemon.DecodeReports(raw)
	if err != nil {
		return err
	}
	fmt.Print(daemon.FormatReports(reports))
	if failed {
		return fmt.Errorf("one or more peers failed")
	}

	if problems := daemon.VerifyCluster(sc, n, reports); len(problems) > 0 {
		return fmt.Errorf("cluster verdict failed (%d problems):\n  %s",
			len(problems), strings.Join(problems, "\n  "))
	}
	diffs, err := daemon.CompareWithSingleProcess(seed, daemon.ClusterLedger(reports), 15*time.Second)
	if err != nil {
		return err
	}
	if len(diffs) > 0 {
		return fmt.Errorf("ledger diverges from single-process run:\n  %s",
			strings.Join(diffs, "\n  "))
	}
	fmt.Println("cluster: PASS — all flows delivered and echoed exactly once; ledgers reconcile and match the single-process run")
	return nil
}

// findSirpentd resolves the sirpentd binary: explicit flag, then a
// sibling of this launcher, then $PATH.
func findSirpentd(explicit string) (string, error) {
	if explicit != "" {
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sib := filepath.Join(filepath.Dir(self), "sirpentd")
		if st, err := os.Stat(sib); err == nil && !st.IsDir() {
			return sib, nil
		}
	}
	if p, err := exec.LookPath("sirpentd"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("sirpentd binary not found (use -sirpentd)")
}

// autoSeed picks the first seed whose scenario gives every peer at
// least one router and actually crosses the partition, so the run
// exercises the UDP tunnels rather than degenerating to one process
// doing all the work.
func autoSeed(n int) (int64, error) {
	for seed := int64(1); seed < 1000; seed++ {
		sc := check.Generate(seed)
		if sc.NRouters >= n && len(check.CrossLinks(sc, n)) > 0 {
			return seed, nil
		}
	}
	return 0, fmt.Errorf("no seed under 1000 yields >=%d routers with cross-links at %d peers", n, n)
}

// readDirURL scans the dir process's stdout for its
// SIRPENT_DIR_URL=... line (the port is dynamically bound), then keeps
// draining the pipe in the background.
func readDirURL(r interface{ Read([]byte) (int, error) }) (string, error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if url, ok := strings.CutPrefix(line, "SIRPENT_DIR_URL="); ok {
			go func() {
				for sc.Scan() {
					fmt.Printf("dir | %s\n", sc.Text())
				}
			}()
			return url, nil
		}
		fmt.Printf("dir | %s\n", line)
	}
	if err := sc.Err(); err != nil {
		return "", fmt.Errorf("reading dir output: %w", err)
	}
	return "", fmt.Errorf("dir exited without printing SIRPENT_DIR_URL")
}

func killAll(cmds []*exec.Cmd) {
	for _, c := range cmds {
		if c != nil && c.Process != nil {
			c.Process.Kill()
		}
	}
}

// prefixWriter returns a writer that prefixes each line with the peer
// name, keeping interleaved child output attributable.
func prefixWriter(name string) *lineWriter {
	return &lineWriter{prefix: name + " | "}
}

type lineWriter struct {
	prefix string
	buf    []byte
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	for {
		i := strings.IndexByte(string(w.buf), '\n')
		if i < 0 {
			break
		}
		fmt.Printf("%s%s\n", w.prefix, w.buf[:i])
		w.buf = w.buf[i+1:]
	}
	return len(p), nil
}
