// Command sirpentd runs a live goroutine Sirpent internetwork: hosts and
// routers are goroutines, links are channels, and each hop performs the
// §6.2 software-router byte surgery on real wire bytes. It drives a
// configurable number of concurrent request/response transactions through
// a two-router backbone and reports forwarding statistics.
//
//	sirpentd -clients 4 -requests 100
//
// With -metrics, every packet is hop-traced into an aggregate
// trace.Metrics and the live snapshot is served as expvar JSON:
//
//	sirpentd -clients 4 -requests 10000 -metrics :8080 -hold 1m &
//	curl -s localhost:8080/debug/vars | python3 -m json.tool
//
// The snapshot appears under the "sirpent" key: per-port counters,
// drop-reason buckets, and a log-scale per-hop latency histogram with
// p50/p99. Metric names are pinned by internal/stats's stability test.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/livenet"
	"repro/internal/trace"
	"repro/internal/viper"
)

func main() {
	nClients := flag.Int("clients", 4, "concurrent client hosts")
	nReq := flag.Int("requests", 100, "transactions per client")
	metricsAddr := flag.String("metrics", "", "serve hop-trace metrics as expvar JSON on this address (e.g. :8080)")
	hold := flag.Duration("hold", 0, "keep serving -metrics this long after the workload finishes")
	flag.Parse()

	net := livenet.NewNetwork()
	defer net.Stop()

	var metrics *trace.Metrics
	if *metricsAddr != "" {
		metrics = trace.NewMetrics()
		net.SetTracer(metrics)
		metrics.Publish("sirpent")
		go func() {
			// expvar's package init registered /debug/vars on the
			// default mux; nothing else is served.
			if err := http.ListenAndServe(*metricsAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "metrics server:", err)
			}
		}()
	}

	r1 := net.NewRouter("r1")
	r2 := net.NewRouter("r2")
	server := net.NewHost("server")
	net.Connect(r1, 100, r2, 1, livenet.WithDepth(64))
	net.Connect(r2, 2, server, 1, livenet.WithDepth(64))

	server.Handle(0, func(d livenet.Delivery) {
		if err := server.Send(d.ReturnRoute, append([]byte("ack:"), d.Data...)); err != nil {
			fmt.Fprintln(os.Stderr, "server:", err)
		}
	})

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *nClients; c++ {
		c := c
		h := net.NewHost(fmt.Sprintf("client%d", c))
		net.Connect(h, 1, r1, uint8(1+c), livenet.WithDepth(64))
		route := []viper.Segment{
			{Port: 1},                         // client interface
			{Port: 100, Flags: viper.FlagVNT}, // r1 -> r2 trunk
			{Port: 2, Flags: viper.FlagVNT},   // r2 -> server
			{Port: viper.PortLocal},
		}
		resp := make(chan struct{}, 1)
		h.Handle(0, func(d livenet.Delivery) { resp <- struct{}{} })
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < *nReq; i++ {
				if err := h.Send(route, []byte(fmt.Sprintf("c%d/%d", c, i))); err != nil {
					fmt.Fprintln(os.Stderr, "client:", err)
					return
				}
				select {
				case <-resp:
				case <-time.After(5 * time.Second):
					fmt.Fprintf(os.Stderr, "client %d: timeout on request %d\n", c, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := *nClients * *nReq
	fmt.Printf("completed %d transactions in %v (%.0f txn/s)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	for _, r := range []*livenet.Router{r1, r2} {
		s := r.Stats()
		fmt.Printf("  %-3s forwarded=%d local=%d drops=%d\n", rName(r, r1), s.Forwarded, s.Local, s.TotalDrops())
	}

	if metrics != nil {
		s := metrics.Snapshot()
		fmt.Printf("traced %d packets / %d hops: hop latency mean=%.0fns p50=%dns p99=%dns\n",
			s.Packets, s.Hops, s.HopLatencyMeanNs, s.HopLatencyP50Ns, s.HopLatencyP99Ns)
		if len(s.Drops) > 0 {
			fmt.Printf("  drops: %v\n", s.Drops)
		}
		if *hold > 0 {
			fmt.Printf("serving metrics on %s/debug/vars for %v\n", *metricsAddr, *hold)
			time.Sleep(*hold)
		}
	}
}

func rName(r, r1 *livenet.Router) string {
	if r == r1 {
		return "r1"
	}
	return "r2"
}
