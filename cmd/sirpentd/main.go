// Command sirpentd runs a live goroutine Sirpent internetwork: hosts and
// routers are goroutines, links are channels, and each hop performs the
// §6.2 software-router byte surgery on real wire bytes. It drives a
// configurable number of concurrent request/response transactions through
// a token-guarded two-router backbone and reports forwarding statistics
// and per-account billing.
//
//	sirpentd -clients 4 -requests 100
//
// With -metrics, every packet is hop-traced into an aggregate
// trace.Metrics and the live observability surface is served over HTTP:
//
//	sirpentd -clients 4 -requests 10000 -metrics :8080 -hold 1m &
//	curl -s localhost:8080/debug/vars | python3 -m json.tool
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/debug/ledger
//	curl -s localhost:8080/debug/flightrec
//
// /debug/vars carries the hop-trace snapshot under the "sirpent" key
// (metric names pinned by internal/stats's stability test); /debug/ledger
// serves the periodically swept per-account usage ledger; /debug/flightrec
// dumps the always-on anomaly ring. The server is shut down gracefully
// after the workload (and any -hold) completes, before the network stops,
// so a late request never races node teardown.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/ledger"
	"repro/internal/livenet"
	"repro/internal/token"
	"repro/internal/trace"
	"repro/internal/viper"
)

func main() {
	nClients := flag.Int("clients", 4, "concurrent client hosts")
	nReq := flag.Int("requests", 100, "transactions per client")
	metricsAddr := flag.String("metrics", "", "serve metrics, ledger and flight recorder on this address (e.g. :8080)")
	hold := flag.Duration("hold", 0, "keep serving -metrics this long after the workload finishes")
	flag.Parse()

	net := livenet.NewNetwork()
	defer net.Stop()

	// The flight recorder is always on: it only records anomalies, so a
	// clean run costs nothing and a broken one leaves evidence.
	flight := ledger.NewFlightRecorder(0)
	net.SetFlightRecorder(flight)

	r1 := net.NewRouter("r1")
	r2 := net.NewRouter("r2")
	server := net.NewHost("server")
	net.Connect(r1, 100, r2, 1, livenet.WithDepth(64))
	net.Connect(r2, 2, server, 1, livenet.WithDepth(64))

	// Guard the backbone (§2.2): both routers share one region key, the
	// trunk and server ports demand tokens, and each client is billed to
	// its own account.
	auth := token.NewAuthority([]byte("sirpentd-region"))
	r1.SetTokenAuthority(auth)
	r2.SetTokenAuthority(auth)
	r1.RequireToken(100)
	r2.RequireToken(2)

	// Sweep both routers' token caches into a network-wide ledger.
	col := ledger.NewCollector(ledger.New())
	col.AddAccountSource("r1", r1.TokenCache().AccountTotals)
	col.AddAccountSource("r2", r2.TokenCache().AccountTotals)
	stopSweep := col.Run(100 * time.Millisecond)
	col.Ledger().Publish("sirpent-ledger")
	flight.Publish("sirpent-flightrec")

	var metrics *trace.Metrics
	var srv *http.Server
	if *metricsAddr != "" {
		metrics = trace.NewMetrics()
		net.SetTracer(metrics)
		metrics.Publish("sirpent")

		mux := http.NewServeMux()
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("/debug/ledger", func(w http.ResponseWriter, _ *http.Request) {
			serveJSON(w, col.Ledger().Snapshot())
		})
		mux.HandleFunc("/debug/flightrec", func(w http.ResponseWriter, _ *http.Request) {
			serveJSON(w, flight.Snapshot())
		})
		srv = &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "metrics server:", err)
			}
		}()
	}

	server.Handle(0, func(d livenet.Delivery) {
		if err := server.Send(d.ReturnRoute, append([]byte("ack:"), d.Data...)); err != nil {
			fmt.Fprintln(os.Stderr, "server:", err)
		}
	})

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *nClients; c++ {
		c := c
		h := net.NewHost(fmt.Sprintf("client%d", c))
		net.Connect(h, 1, r1, uint8(1+c), livenet.WithDepth(64))
		account := uint32(1 + c)
		route := []viper.Segment{
			{Port: 1}, // client interface
			{Port: 100, Flags: viper.FlagVNT, // r1 -> r2 trunk
				PortToken: auth.Issue(token.Spec{Account: account, Port: 100, ReverseOK: true})},
			{Port: 2, Flags: viper.FlagVNT, // r2 -> server
				PortToken: auth.Issue(token.Spec{Account: account, Port: 2, ReverseOK: true})},
			{Port: viper.PortLocal},
		}
		resp := make(chan struct{}, 1)
		h.Handle(0, func(d livenet.Delivery) { resp <- struct{}{} })
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < *nReq; i++ {
				if err := h.Send(route, []byte(fmt.Sprintf("c%d/%d", c, i))); err != nil {
					fmt.Fprintln(os.Stderr, "client:", err)
					return
				}
				select {
				case <-resp:
				case <-time.After(5 * time.Second):
					fmt.Fprintf(os.Stderr, "client %d: timeout on request %d\n", c, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := *nClients * *nReq
	fmt.Printf("completed %d transactions in %v (%.0f txn/s)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	for _, r := range []*livenet.Router{r1, r2} {
		s := r.Stats()
		fmt.Printf("  %-3s forwarded=%d local=%d token-auth=%d drops=%d\n",
			rName(r, r1), s.Forwarded, s.Local, s.TokenAuthorized, s.TotalDrops())
	}
	printBilling(col)
	if n := flight.Total(); n > 0 {
		fmt.Printf("flight recorder captured %d anomalies:\n%s", n, flight.Format())
	}

	if metrics != nil {
		s := metrics.Snapshot()
		fmt.Printf("traced %d packets / %d hops: hop latency mean=%.0fns p50=%dns p99=%dns\n",
			s.Packets, s.Hops, s.HopLatencyMeanNs, s.HopLatencyP50Ns, s.HopLatencyP99Ns)
		if len(s.Drops) > 0 {
			fmt.Printf("  drops: %v\n", s.Drops)
		}
		if *hold > 0 {
			fmt.Printf("serving on %s: /debug/vars /debug/ledger /debug/flightrec /healthz for %v\n",
				*metricsAddr, *hold)
			time.Sleep(*hold)
		}
	}

	// Teardown order matters: drain the HTTP server first (a late curl
	// gets its response, new connections are refused), stop the ledger
	// sweeper, and only then — via the deferred Stop — the network.
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "metrics server shutdown:", err)
		}
		cancel()
	}
	stopSweep()
}

// printBilling performs a final ledger sweep and renders the per-account
// table.
func printBilling(col *ledger.Collector) {
	col.Collect()
	snap := col.Ledger().Snapshot()
	if len(snap.Accounts) == 0 {
		return
	}
	fmt.Printf("per-account ledger (%d sweeps):\n", snap.Sweeps)
	fmt.Printf("  %-8s %10s %12s %8s\n", "account", "packets", "bytes", "denials")
	for _, row := range snap.Accounts {
		fmt.Printf("  %-8d %10d %12d %8d\n", row.Account, row.Packets, row.Bytes, row.Denials)
	}
}

func serveJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func rName(r, r1 *livenet.Router) string {
	if r == r1 {
		return "r1"
	}
	return "r2"
}
