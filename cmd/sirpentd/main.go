// Command sirpentd runs a live goroutine Sirpent internetwork: hosts and
// routers are goroutines, links are channels, and each hop performs the
// §6.2 software-router byte surgery on real wire bytes. It drives a
// configurable number of concurrent request/response transactions through
// a two-router backbone and reports forwarding statistics.
//
//	sirpentd -clients 4 -requests 100
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/livenet"
	"repro/internal/viper"
)

func main() {
	nClients := flag.Int("clients", 4, "concurrent client hosts")
	nReq := flag.Int("requests", 100, "transactions per client")
	flag.Parse()

	net := livenet.NewNetwork()
	defer net.Stop()

	r1 := net.NewRouter("r1")
	r2 := net.NewRouter("r2")
	server := net.NewHost("server")
	net.Connect(r1, 100, r2, 1, livenet.WithDepth(64))
	net.Connect(r2, 2, server, 1, livenet.WithDepth(64))

	server.Handle(0, func(d livenet.Delivery) {
		if err := server.Send(d.ReturnRoute, append([]byte("ack:"), d.Data...)); err != nil {
			fmt.Fprintln(os.Stderr, "server:", err)
		}
	})

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *nClients; c++ {
		c := c
		h := net.NewHost(fmt.Sprintf("client%d", c))
		net.Connect(h, 1, r1, uint8(1+c), livenet.WithDepth(64))
		route := []viper.Segment{
			{Port: 1},                         // client interface
			{Port: 100, Flags: viper.FlagVNT}, // r1 -> r2 trunk
			{Port: 2, Flags: viper.FlagVNT},   // r2 -> server
			{Port: viper.PortLocal},
		}
		resp := make(chan struct{}, 1)
		h.Handle(0, func(d livenet.Delivery) { resp <- struct{}{} })
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < *nReq; i++ {
				if err := h.Send(route, []byte(fmt.Sprintf("c%d/%d", c, i))); err != nil {
					fmt.Fprintln(os.Stderr, "client:", err)
					return
				}
				select {
				case <-resp:
				case <-time.After(5 * time.Second):
					fmt.Fprintf(os.Stderr, "client %d: timeout on request %d\n", c, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := *nClients * *nReq
	fmt.Printf("completed %d transactions in %v (%.0f txn/s)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	for _, r := range []*livenet.Router{r1, r2} {
		s := r.Stats()
		fmt.Printf("  %-3s forwarded=%d local=%d drops=%d\n", rName(r, r1), s.Forwarded, s.Local, s.TotalDrops())
	}
}

func rName(r, r1 *livenet.Router) string {
	if r == r1 {
		return "r1"
	}
	return "r2"
}
