// Command sirpentd is the Sirpent daemon. It has four roles, selected
// by subcommand:
//
//	sirpentd run     [-clients N] [-requests N] [-metrics :8080] [-hold 1m]
//	sirpentd dir     [-addr 127.0.0.1:0] [-seed N] [-peers N]
//	sirpentd peer    [-index I] [-peers N] [-seed N] [-dir URL] [-udp 127.0.0.1:0]
//	                 [-gateway] [-gateway-listen 127.0.0.1:0]
//	                 [-telemetry] [-trace-sample N]
//	sirpentd gateway [-listen 127.0.0.1:1080] [-hops N]
//	sirpentd report  [-dir URL]
//
// `run` is the historical single-process demo: hosts and routers are
// goroutines, links are channels, and each hop performs the §6.2
// software-router byte surgery on real wire bytes, driving concurrent
// request/response transactions through a token-guarded two-router
// backbone. For compatibility, invoking sirpentd with bare flags
// (`sirpentd -clients 4`) is an alias for `run`.
//
// `dir` serves the internetwork directory (§3) as a network service:
// peers register their UDP socket addresses with it, discover each
// other, and fetch source routes whose segments carry port tokens —
// route and token issue are deterministic, so any number of processes
// agree on the wire bytes. The first stdout line is
// `SIRPENT_DIR_URL=<url>` so launchers can find a dynamically bound
// port.
//
// `peer` realizes one partition of a seeded conformance scenario on a
// local livenet substrate, with cross-partition links carried over
// real UDP sockets (Sirpent-over-IP encapsulation, §2.3), runs its
// share of the workload, reports evidence to the directory, and exits.
// With -gateway, the peers owning the scenario's gateway hosts also
// bind a SOCKS5 ingress and a dialing egress on them (DESIGN.md §13),
// so real TCP streams transit the same cluster, and every peer holds
// its drain barrier until the launcher raises the directory's
// shutdown latch. Peers ship cluster telemetry — trace spans, tunnel
// counters, flight-recorder anomalies — to the directory by default
// (-telemetry=false disables it; -trace-sample N samples one packet
// in N), where GET /debug/cluster serves the merged view.
//
// `report` fetches that merged view from a running cluster's directory
// and renders the per-node, per-stage and per-tunnel tables.
//
// `gateway` is the standalone single-process proxy: a SOCKS5 listener
// whose accepted streams ride VMTP packet groups across an in-process
// token-guarded router chain to a dialing egress. Point curl at it:
// `curl --socks5-hostname <addr> http://example.com/`. The first
// stdout line is `SIRPENT_SOCKS_ADDR=<addr>`.
//
// cmd/sirpent-cluster orchestrates `dir` plus N `peer` processes into
// a full localhost cluster run with verification.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/daemon"
	"repro/internal/directory"
)

func main() {
	args := os.Args[1:]
	sub := "run"
	// Bare flags alias `run`, keeping historical invocations working.
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		sub = args[0]
		args = args[1:]
	}
	var err error
	switch sub {
	case "run":
		err = runCmd(args)
	case "dir":
		err = dirCmd(args)
	case "peer":
		err = peerCmd(args)
	case "gateway":
		err = gatewayCmd(args)
	case "report":
		err = reportCmd(args)
	case "help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "sirpentd: unknown subcommand %q\n\n", sub)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sirpentd:", err)
		os.Exit(1)
	}
}

func usage(w *os.File) {
	fmt.Fprintln(w, `usage: sirpentd [run|dir|peer|gateway|report] [flags]

  run      single-process demo workload (default; bare flags alias this role)
  dir      serve the directory service for a cluster
  peer     join a cluster as one partition of the scenario
  gateway  serve a SOCKS5 proxy whose streams ride a token-guarded Sirpent chain
  report   fetch and render a cluster's merged telemetry from its directory

Run 'sirpentd <role> -h' for the role's flags.`)
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("sirpentd run", flag.ExitOnError)
	clients := fs.Int("clients", 4, "concurrent client hosts")
	requests := fs.Int("requests", 100, "transactions per client")
	metrics := fs.String("metrics", "", "serve metrics, ledger and flight recorder on this address (e.g. :8080)")
	hold := fs.Duration("hold", 0, "keep serving -metrics this long after the workload finishes")
	fs.Parse(args)
	return daemon.Run(daemon.RunConfig{
		Clients:  *clients,
		Requests: *requests,
		Metrics:  *metrics,
		Hold:     *hold,
		Out:      os.Stdout,
		Errout:   os.Stderr,
	})
}

func dirCmd(args []string) error {
	fs := flag.NewFlagSet("sirpentd dir", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:0", "TCP listen address")
	seed := fs.Int64("seed", 1, "conformance scenario seed")
	peers := fs.Int("peers", 2, "expected cluster size")
	fs.Parse(args)

	ds, err := daemon.StartDir(daemon.DirConfig{Addr: *addr, Seed: *seed, Peers: *peers})
	if err != nil {
		return err
	}
	// Machine-readable first line: launchers parse this to find a
	// dynamically bound port.
	fmt.Printf("SIRPENT_DIR_URL=%s\n", ds.URL)
	fmt.Printf("serving scenario seed=%d (%d routers, %d hosts, %d flows) for %d peers\n",
		*seed, ds.Scenario.NRouters, len(ds.Scenario.HostRouter), len(ds.Scenario.Flows), *peers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		ds.Close()
	}()
	return ds.Wait()
}

func peerCmd(args []string) error {
	fs := flag.NewFlagSet("sirpentd peer", flag.ExitOnError)
	index := fs.Int("index", 0, "this peer's index (0-based)")
	peers := fs.Int("peers", 2, "cluster size")
	seed := fs.Int64("seed", 1, "conformance scenario seed (must match the directory's)")
	dir := fs.String("dir", "", "directory service base URL (required)")
	udp := fs.String("udp", "127.0.0.1:0", "UDP bridge listen address")
	settle := fs.Duration("settle", 30*time.Second, "quiesce deadline")
	loss := fs.Float64("loss", 0, "injected tunnel loss ratio (fault experiments)")
	alternates := fs.Int("alternates", 0, "ranked failover alternates per router hop on flow routes (0-3)")
	failoverLink := fs.Int("failover-link", -1, "failover smoke: global link index whose tunnel goes down between flow waves (-1 = off)")
	gw := fs.Bool("gateway", false, "gateway mode: bind SOCKS relays on the scenario's gateway hosts and hold for the launcher's shutdown latch")
	gwListen := fs.String("gateway-listen", "127.0.0.1:0", "ingress SOCKS listen address (gateway mode)")
	gwWait := fs.Duration("gateway-wait", 2*time.Minute, "bound on the wait for the shutdown latch (gateway mode)")
	telemetry := fs.Bool("telemetry", true, "trace packets across process boundaries and ship telemetry to the directory")
	traceSample := fs.Int("trace-sample", 1, "trace one originated packet in N (with -telemetry; 1 traces all)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("peer: -dir is required")
	}
	rep, err := daemon.Peer(daemon.PeerConfig{
		Index:         *index,
		Total:         *peers,
		Seed:          *seed,
		DirURL:        *dir,
		UDPAddr:       *udp,
		SettleTimeout: *settle,
		LossRatio:     *loss,
		Alternates:    *alternates,
		Failover:      *failoverLink >= 0,
		BlipLink:      *failoverLink,
		Gateway:       *gw,
		GatewayListen: *gwListen,
		GatewayWait:   *gwWait,
		Telemetry:     *telemetry,
		TraceSample:   *traceSample,
		Logf: func(format string, a ...any) {
			fmt.Printf(format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	if !rep.Complete {
		return fmt.Errorf("peer %d: settle deadline passed before quiesce (%d delivered, %d replied)",
			*index, len(rep.Delivered), len(rep.Replied))
	}
	return nil
}

func reportCmd(args []string) error {
	fs := flag.NewFlagSet("sirpentd report", flag.ExitOnError)
	dir := fs.String("dir", "", "directory service base URL (required)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("report: -dir is required")
	}
	cr, err := directory.NewClient(*dir).Cluster()
	if err != nil {
		return err
	}
	fmt.Print(daemon.FormatClusterReport(cr))
	return nil
}

func gatewayCmd(args []string) error {
	fs := flag.NewFlagSet("sirpentd gateway", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:1080", "SOCKS5 listen address")
	hops := fs.Int("hops", 2, "routers in the token-guarded chain")
	fs.Parse(args)

	gs, err := daemon.StartGateway(daemon.GatewayConfig{Hops: *hops, Listen: *listen})
	if err != nil {
		return err
	}
	defer gs.Close()
	// Machine-readable first line, like `dir`: launchers and scripts
	// parse this to find a dynamically bound port.
	fmt.Printf("SIRPENT_SOCKS_ADDR=%s\n", gs.Addr())
	fmt.Printf("SOCKS5 proxy over a %d-router token-guarded chain; ^C to stop\n", *hops)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	is, es := gs.IngressStats(), gs.EgressStats()
	fmt.Printf("ingress: streams=%d clean=%d resets=%d in=%dB out=%dB socks-errs=%d\n",
		is.Streams, is.CleanCloses, is.Resets, is.BytesIn, is.BytesOut, is.SocksErrors)
	fmt.Printf("egress:  streams=%d clean=%d resets=%d in=%dB out=%dB dial-errs=%d\n",
		es.Streams, es.CleanCloses, es.Resets, es.BytesIn, es.BytesOut, es.DialErrors)
	for acct, u := range gs.Bill() {
		fmt.Printf("account %d billed: %d packets, %d bytes\n", acct, u.Packets, u.Bytes)
	}
	if problems := gs.Reconcile(); len(problems) > 0 {
		return fmt.Errorf("ledger reconciliation failed: %v", problems)
	}
	return nil
}
